package eval

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// scoreClassifier scores by the first feature directly.
type scoreClassifier struct{}

func (scoreClassifier) Distribution(x []float64) []float64 {
	p := x[0]
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return []float64{1 - p, p}
}

// hardClassifier predicts class 1 iff x[0] >= 0.5, emitting one-hot.
type hardClassifier struct{}

func (hardClassifier) Distribution(x []float64) []float64 {
	if x[0] >= 0.5 {
		return []float64{0, 1}
	}
	return []float64{1, 0}
}

func mk(t *testing.T, scores []float64, labels []int) *dataset.Instances {
	t.Helper()
	d := dataset.New([]string{"s"}, dataset.BinaryClassNames())
	for i := range scores {
		_ = d.Add([]float64{scores[i]}, labels[i], map[int]string{0: "b", 1: "m"}[labels[i]])
	}
	return d
}

func TestConfusionMetrics(t *testing.T) {
	cm := Confusion{TP: 40, FP: 10, TN: 45, FN: 5}
	if a := cm.Accuracy(); math.Abs(a-0.85) > 1e-12 {
		t.Errorf("accuracy = %v", a)
	}
	if p := cm.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := cm.Recall(); math.Abs(r-40.0/45) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if f := cm.FPR(); math.Abs(f-10.0/55) > 1e-12 {
		t.Errorf("fpr = %v", f)
	}
	if f1 := cm.F1(); f1 <= 0 || f1 > 1 {
		t.Errorf("f1 = %v", f1)
	}
	if (Confusion{}).Accuracy() != 0 || (Confusion{}).Precision() != 0 ||
		(Confusion{}).Recall() != 0 || (Confusion{}).FPR() != 0 || (Confusion{}).F1() != 0 {
		t.Error("empty confusion should yield zero metrics")
	}
	if cm.String() == "" {
		t.Error("String empty")
	}
}

func TestEvaluateCounts(t *testing.T) {
	d := mk(t,
		[]float64{0.9, 0.8, 0.6, 0.4, 0.2, 0.1},
		[]int{1, 1, 0, 1, 0, 0})
	cm, err := Evaluate(hardClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0.5: predictions 1,1,1,0,0,0 vs labels 1,1,0,1,0,0.
	want := Confusion{TP: 2, FP: 1, TN: 2, FN: 1}
	if cm != want {
		t.Errorf("confusion = %+v, want %+v", cm, want)
	}
	acc, _ := Accuracy(hardClassifier{}, d)
	if math.Abs(acc-4.0/6) > 1e-12 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	d := mk(t,
		[]float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1},
		[]int{1, 1, 1, 0, 0, 0})
	roc, err := BuildROC(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect AUC = %v, want 1", auc)
	}
	// Curve must start at (0,0) and end at (1,1).
	first, last := roc.Points[0], roc.Points[len(roc.Points)-1]
	if first.FPR != 0 || first.TPR != 0 || last.FPR != 1 || last.TPR != 1 {
		t.Error("ROC endpoints wrong")
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(roc.Points); i++ {
		if roc.Points[i].FPR < roc.Points[i-1].FPR || roc.Points[i].TPR < roc.Points[i-1].TPR {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestROCAntiClassifier(t *testing.T) {
	d := mk(t,
		[]float64{0.9, 0.8, 0.2, 0.1},
		[]int{0, 0, 1, 1})
	auc, err := AUC(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if auc > 1e-12 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCRandomScores(t *testing.T) {
	// Interleaved scores: AUC should be 0.5.
	d := mk(t,
		[]float64{0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1},
		[]int{1, 0, 1, 0, 1, 0, 1, 0})
	auc, err := AUC(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.15 {
		t.Errorf("interleaved AUC = %v, want ~0.5", auc)
	}
}

func TestROCHardClassifierSingleStep(t *testing.T) {
	// A hard 0/1 scorer yields a 3-point ROC: (0,0), one operating
	// point, (1,1). Its AUC equals (TPR+TNR)/2 — the balanced accuracy
	// — which is the WEKA SMO effect the paper observes.
	d := mk(t,
		[]float64{0.9, 0.8, 0.6, 0.4, 0.2, 0.1},
		[]int{1, 1, 0, 1, 0, 0})
	roc, err := BuildROC(hardClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc.Points) != 3 {
		t.Fatalf("hard classifier ROC has %d points, want 3", len(roc.Points))
	}
	tpr := 2.0 / 3 // TP=2 of 3 positives
	fpr := 1.0 / 3 // FP=1 of 3 negatives
	wantAUC := (tpr + (1 - fpr)) / 2
	if auc := roc.AUC(); math.Abs(auc-wantAUC) > 1e-12 {
		t.Errorf("hard AUC = %v, want %v (balanced accuracy)", auc, wantAUC)
	}
}

func TestROCTiedScores(t *testing.T) {
	// All identical scores collapse to one threshold step; AUC = 0.5.
	d := mk(t, []float64{0.5, 0.5, 0.5, 0.5}, []int{1, 0, 1, 0})
	roc, err := BuildROC(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc.Points) != 2 {
		t.Fatalf("tied scores should give 2 points, got %d", len(roc.Points))
	}
	if auc := roc.AUC(); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}

func TestROCErrors(t *testing.T) {
	single := dataset.New([]string{"s"}, dataset.BinaryClassNames())
	_ = single.Add([]float64{0.5}, 1, "m")
	if _, err := BuildROC(scoreClassifier{}, single); err == nil {
		t.Error("single-class test set should fail")
	}
	tri := dataset.New([]string{"s"}, []string{"a", "b", "c"})
	_ = tri.Add([]float64{0.5}, 0, "g")
	if _, err := BuildROC(scoreClassifier{}, tri); err == nil {
		t.Error("3-class should fail")
	}
	if _, err := Evaluate(scoreClassifier{}, tri); err == nil {
		t.Error("3-class Evaluate should fail")
	}
}

func TestMeasureAndPerformance(t *testing.T) {
	d := mk(t,
		[]float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1},
		[]int{1, 1, 1, 0, 0, 0})
	res, err := Measure(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 || res.AUC != 1 {
		t.Errorf("measure = %+v, want perfect", res)
	}
	if res.Performance() != 1 {
		t.Error("performance should be ACC*AUC")
	}
	r := Result{Accuracy: 0.9, AUC: 0.8}
	if math.Abs(r.Performance()-0.72) > 1e-12 {
		t.Error("performance product wrong")
	}
}

var _ mlearn.Classifier = scoreClassifier{}
