package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// TestPropertyAUCBounds: for arbitrary score/label assignments the AUC
// stays in [0,1] and the curve is monotone with fixed endpoints.
func TestPropertyAUCBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rows := int(n%50) + 4
		rng := micro.NewRNG(seed | 1)
		d := dataset.New([]string{"s"}, dataset.BinaryClassNames())
		// Guarantee both classes.
		_ = d.Add([]float64{rng.Float64()}, 0, "b")
		_ = d.Add([]float64{rng.Float64()}, 1, "m")
		for i := 0; i < rows; i++ {
			y := rng.Intn(2)
			g := "b"
			if y == 1 {
				g = "m"
			}
			_ = d.Add([]float64{rng.Float64()}, y, g)
		}
		roc, err := BuildROC(scoreClassifier{}, d)
		if err != nil {
			return false
		}
		auc := roc.AUC()
		if auc < 0 || auc > 1 {
			return false
		}
		first := roc.Points[0]
		last := roc.Points[len(roc.Points)-1]
		if first.FPR != 0 || first.TPR != 0 || last.FPR != 1 || last.TPR != 1 {
			return false
		}
		for i := 1; i < len(roc.Points); i++ {
			if roc.Points[i].FPR < roc.Points[i-1].FPR || roc.Points[i].TPR < roc.Points[i-1].TPR {
				return false
			}
			if roc.Points[i].Threshold > roc.Points[i-1].Threshold {
				return false // thresholds must descend
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAUCInvariantToMonotoneTransform: AUC is a rank statistic,
// so squashing all scores through a monotone map must not change it.
func TestPropertyAUCInvariantToMonotoneTransform(t *testing.T) {
	f := func(seed uint64) bool {
		rng := micro.NewRNG(seed | 1)
		raw := dataset.New([]string{"s"}, dataset.BinaryClassNames())
		squashed := dataset.New([]string{"s"}, dataset.BinaryClassNames())
		for i := 0; i < 40; i++ {
			y := rng.Intn(2)
			g := "b"
			if y == 1 {
				g = "m"
			}
			v := rng.Float64()
			_ = raw.Add([]float64{v}, y, g)
			_ = squashed.Add([]float64{v * v}, y, g) // monotone on [0,1]
		}
		a1, err1 := AUC(scoreClassifier{}, raw)
		a2, err2 := AUC(scoreClassifier{}, squashed)
		if err1 != nil || err2 != nil {
			return false
		}
		diff := a1 - a2
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConfusionConsistency: the four cells always sum to the
// row count and accuracy equals (TP+TN)/n.
func TestPropertyConfusionConsistency(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rows := int(n%60) + 2
		rng := micro.NewRNG(seed | 1)
		d := dataset.New([]string{"s"}, dataset.BinaryClassNames())
		for i := 0; i < rows; i++ {
			y := rng.Intn(2)
			g := "b"
			if y == 1 {
				g = "m"
			}
			_ = d.Add([]float64{rng.Float64()}, y, g)
		}
		cm, err := Evaluate(hardClassifier{}, d)
		if err != nil {
			return false
		}
		if cm.TP+cm.FP+cm.TN+cm.FN != rows {
			return false
		}
		want := float64(cm.TP+cm.TN) / float64(rows)
		diff := cm.Accuracy() - want
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
