package eval

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
	"repro/internal/mlearn/oner"
)

func blobSet(n int, sep float64, seed uint64) *dataset.Instances {
	d := dataset.New([]string{"f0", "f1"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(seed)
	for i := 0; i < n; i++ {
		y := i % 2
		cx := 0.0
		if y == 1 {
			cx = sep
		}
		g := "b"
		if y == 1 {
			g = "m"
		}
		_ = d.Add([]float64{cx + rng.Norm(), cx/2 + rng.Norm()}, y, g)
	}
	return d
}

func TestCrossValidateSeparable(t *testing.T) {
	d := blobSet(200, 6, 1)
	res, err := CrossValidate(oner.New(), d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("got %d folds", len(res.Folds))
	}
	if acc := res.MeanAccuracy(); acc < 0.9 {
		t.Errorf("mean CV accuracy = %.3f on separable data", acc)
	}
	if res.MeanAUC() <= 0.5 {
		t.Error("mean AUC should beat chance")
	}
	if res.StdAccuracy() < 0 || res.StdAccuracy() > 0.3 {
		t.Errorf("std = %v implausible", res.StdAccuracy())
	}
}

func TestCrossValidateStratification(t *testing.T) {
	// Heavily imbalanced data: every fold must still contain both
	// classes (otherwise Measure errors on the ROC).
	d := dataset.New([]string{"v"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(3)
	for i := 0; i < 120; i++ {
		y := 0
		if i%6 == 0 {
			y = 1
		}
		v := float64(y*4) + rng.Norm()
		g := "b"
		if y == 1 {
			g = "m"
		}
		_ = d.Add([]float64{v}, y, g)
	}
	if _, err := CrossValidate(oner.New(), d, 5, 9); err != nil {
		t.Fatalf("stratified CV failed on imbalanced data: %v", err)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := blobSet(100, 5, 1)
	if _, err := CrossValidate(oner.New(), d, 1, 1); err == nil {
		t.Error("k=1 should fail")
	}
	tiny := blobSet(6, 5, 1)
	if _, err := CrossValidate(oner.New(), tiny, 5, 1); err == nil {
		t.Error("too-few rows should fail")
	}
}

func TestCrossValidateDeterminism(t *testing.T) {
	d := blobSet(150, 4, 7)
	a, err := CrossValidate(oner.New(), d, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(oner.New(), d, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.Folds {
		if a.Folds[f] != b.Folds[f] {
			t.Fatal("same seed must reproduce folds exactly")
		}
	}
}

func TestPRCurvePerfect(t *testing.T) {
	d := mk(t,
		[]float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1},
		[]int{1, 1, 1, 0, 0, 0})
	pts, err := PRCurve(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect ranking: precision stays 1.0 until all positives found.
	for _, p := range pts {
		if p.Recall <= 1.0 && p.Precision < 1.0 && p.Recall < 1.0 {
			t.Errorf("precision dropped to %.2f at recall %.2f on perfectly ranked data", p.Precision, p.Recall)
		}
	}
	if ap := AveragePrecision(pts); math.Abs(ap-1) > 1e-9 {
		t.Errorf("average precision = %v, want 1", ap)
	}
	last := pts[len(pts)-1]
	if last.Recall != 1 {
		t.Error("curve must reach full recall")
	}
}

func TestPRCurveInterleaved(t *testing.T) {
	d := mk(t,
		[]float64{0.8, 0.7, 0.6, 0.5},
		[]int{1, 0, 1, 0})
	pts, err := PRCurve(scoreClassifier{}, d)
	if err != nil {
		t.Fatal(err)
	}
	ap := AveragePrecision(pts)
	if ap <= 0.5 || ap >= 1 {
		t.Errorf("interleaved AP = %v, want in (0.5, 1)", ap)
	}
}

func TestPRCurveErrors(t *testing.T) {
	neg := dataset.New([]string{"s"}, dataset.BinaryClassNames())
	_ = neg.Add([]float64{0.5}, 0, "b")
	if _, err := PRCurve(scoreClassifier{}, neg); err == nil {
		t.Error("no positives should fail")
	}
	tri := dataset.New([]string{"s"}, []string{"a", "b", "c"})
	_ = tri.Add([]float64{0.5}, 0, "g")
	if _, err := PRCurve(scoreClassifier{}, tri); err == nil {
		t.Error("3 classes should fail")
	}
}

var _ mlearn.Classifier = hardClassifier{}
