package eval

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// CVResult summarises a k-fold cross-validation.
type CVResult struct {
	Folds []Result
}

// MeanAccuracy returns the mean accuracy across folds.
func (r CVResult) MeanAccuracy() float64 { return r.mean(func(x Result) float64 { return x.Accuracy }) }

// MeanAUC returns the mean AUC across folds.
func (r CVResult) MeanAUC() float64 { return r.mean(func(x Result) float64 { return x.AUC }) }

// StdAccuracy returns the accuracy standard deviation across folds.
func (r CVResult) StdAccuracy() float64 {
	return r.std(func(x Result) float64 { return x.Accuracy })
}

func (r CVResult) mean(f func(Result) float64) float64 {
	if len(r.Folds) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range r.Folds {
		s += f(x)
	}
	return s / float64(len(r.Folds))
}

func (r CVResult) std(f func(Result) float64) float64 {
	if len(r.Folds) < 2 {
		return 0
	}
	m := r.mean(f)
	s := 0.0
	for _, x := range r.Folds {
		d := f(x) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(r.Folds)-1))
}

// CrossValidate performs stratified k-fold cross-validation: rows of
// each class are distributed round-robin over folds after a
// deterministic shuffle, each fold serves once as the test set.
func CrossValidate(tr mlearn.Trainer, d *dataset.Instances, k int, seed uint64) (CVResult, error) {
	return CrossValidateWorkers(tr, d, k, seed, 0)
}

// CrossValidateWorkers is CrossValidate with the fold train/measure
// loop spread over a worker pool: 0 workers uses GOMAXPROCS, 1 runs
// sequentially. The fold assignment depends only on (seed, k), each
// fold's result lands at its own index, and trainers are pure
// configurations (all mutable state lives in per-Train locals), so the
// CVResult is identical for any worker count.
func CrossValidateWorkers(tr mlearn.Trainer, d *dataset.Instances, k int, seed uint64, workers int) (CVResult, error) {
	if k < 2 {
		return CVResult{}, errors.New("eval: need at least 2 folds")
	}
	if d.NumRows() < 2*k {
		return CVResult{}, fmt.Errorf("eval: %d rows is too few for %d folds", d.NumRows(), k)
	}

	// Stratified assignment: per class, shuffle indices, deal them out.
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	assign := make([]int, d.NumRows())
	rng := micro.NewRNG(seed ^ 0xcafef00d)
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		for i := len(idx) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
		for pos, i := range idx {
			assign[i] = pos % k
		}
	}

	attrs := make([]string, d.NumAttrs())
	for i, a := range d.Attributes {
		attrs[i] = a.Name
	}

	// Exact fold sizes, so train/test storage is allocated once. Rows
	// were validated when d was built, so the folds alias them instead
	// of copying (trainers treat feature rows as read-only).
	foldSize := make([]int, k)
	for _, f := range assign {
		foldSize[f]++
	}
	trainSets := make([]*dataset.Instances, k)
	testSets := make([]*dataset.Instances, k)
	for f := 0; f < k; f++ {
		trainSets[f] = dataset.NewWithCapacity(attrs, d.ClassNames, d.NumRows()-foldSize[f])
		testSets[f] = dataset.NewWithCapacity(attrs, d.ClassNames, foldSize[f])
	}
	for i := range d.X {
		for f := 0; f < k; f++ {
			if assign[i] == f {
				testSets[f].AddShared(d.X[i], d.Y[i], d.Groups[i])
			} else {
				trainSets[f].AddShared(d.X[i], d.Y[i], d.Groups[i])
			}
		}
	}

	out := CVResult{Folds: make([]Result, k)}
	errs := make([]error, k)
	runFold := func(f int) {
		model, err := tr.Train(trainSets[f], nil)
		if err != nil {
			errs[f] = fmt.Errorf("eval: fold %d: %v", f, err)
			return
		}
		res, err := Measure(model, testSets[f])
		if err != nil {
			errs[f] = fmt.Errorf("eval: fold %d: %v", f, err)
			return
		}
		out.Folds[f] = res
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers == 1 {
		for f := 0; f < k; f++ {
			runFold(f)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for f := range next {
					runFold(f)
				}
			}()
		}
		for f := 0; f < k; f++ {
			next <- f
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return CVResult{}, err
		}
	}
	return out, nil
}

// PRPoint is one precision/recall operating point.
type PRPoint struct {
	Recall    float64
	Precision float64
	Threshold float64
}

// PRCurve builds the precision-recall curve by sweeping the decision
// threshold over the classifier's malware scores, from the most
// confident prediction down.
func PRCurve(c mlearn.Classifier, test *dataset.Instances) ([]PRPoint, error) {
	if test.NumClasses() != 2 {
		return nil, errors.New("eval: binary classification only")
	}
	type scored struct {
		s   float64
		pos bool
	}
	items := make([]scored, 0, test.NumRows())
	nPos := 0
	scratch := make([]float64, test.NumClasses())
	for i := range test.X {
		pos := test.Y[i] == 1
		if pos {
			nPos++
		}
		items = append(items, scored{s: mlearn.ScoreWith(c, test.X[i], scratch), pos: pos})
	}
	if nPos == 0 {
		return nil, errors.New("eval: PR curve needs positive examples")
	}
	sort.Slice(items, func(a, b int) bool { return items[a].s > items[b].s })

	var pts []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		s := items[i].s
		for i < len(items) && items[i].s == s {
			if items[i].pos {
				tp++
			} else {
				fp++
			}
			i++
		}
		pts = append(pts, PRPoint{
			Recall:    float64(tp) / float64(nPos),
			Precision: float64(tp) / float64(tp+fp),
			Threshold: s,
		})
	}
	return pts, nil
}

// AveragePrecision integrates the PR curve (step-wise interpolation):
// the mean precision weighted by recall increments.
func AveragePrecision(pts []PRPoint) float64 {
	ap := 0.0
	prevRecall := 0.0
	for _, p := range pts {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap
}
