package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// CVResult summarises a k-fold cross-validation.
type CVResult struct {
	Folds []Result
}

// MeanAccuracy returns the mean accuracy across folds.
func (r CVResult) MeanAccuracy() float64 { return r.mean(func(x Result) float64 { return x.Accuracy }) }

// MeanAUC returns the mean AUC across folds.
func (r CVResult) MeanAUC() float64 { return r.mean(func(x Result) float64 { return x.AUC }) }

// StdAccuracy returns the accuracy standard deviation across folds.
func (r CVResult) StdAccuracy() float64 {
	return r.std(func(x Result) float64 { return x.Accuracy })
}

func (r CVResult) mean(f func(Result) float64) float64 {
	if len(r.Folds) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range r.Folds {
		s += f(x)
	}
	return s / float64(len(r.Folds))
}

func (r CVResult) std(f func(Result) float64) float64 {
	if len(r.Folds) < 2 {
		return 0
	}
	m := r.mean(f)
	s := 0.0
	for _, x := range r.Folds {
		d := f(x) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(r.Folds)-1))
}

// CrossValidate performs stratified k-fold cross-validation: rows of
// each class are distributed round-robin over folds after a
// deterministic shuffle, each fold serves once as the test set.
func CrossValidate(tr mlearn.Trainer, d *dataset.Instances, k int, seed uint64) (CVResult, error) {
	if k < 2 {
		return CVResult{}, errors.New("eval: need at least 2 folds")
	}
	if d.NumRows() < 2*k {
		return CVResult{}, fmt.Errorf("eval: %d rows is too few for %d folds", d.NumRows(), k)
	}

	// Stratified assignment: per class, shuffle indices, deal them out.
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	assign := make([]int, d.NumRows())
	rng := micro.NewRNG(seed ^ 0xcafef00d)
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		for i := len(idx) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			idx[i], idx[j] = idx[j], idx[i]
		}
		for pos, i := range idx {
			assign[i] = pos % k
		}
	}

	attrs := make([]string, d.NumAttrs())
	for i, a := range d.Attributes {
		attrs[i] = a.Name
	}

	var out CVResult
	for f := 0; f < k; f++ {
		train := dataset.New(attrs, d.ClassNames)
		test := dataset.New(attrs, d.ClassNames)
		for i := range d.X {
			target := train
			if assign[i] == f {
				target = test
			}
			if err := target.Add(d.X[i], d.Y[i], d.Groups[i]); err != nil {
				return CVResult{}, err
			}
		}
		model, err := tr.Train(train, nil)
		if err != nil {
			return CVResult{}, fmt.Errorf("eval: fold %d: %v", f, err)
		}
		res, err := Measure(model, test)
		if err != nil {
			return CVResult{}, fmt.Errorf("eval: fold %d: %v", f, err)
		}
		out.Folds = append(out.Folds, res)
	}
	return out, nil
}

// PRPoint is one precision/recall operating point.
type PRPoint struct {
	Recall    float64
	Precision float64
	Threshold float64
}

// PRCurve builds the precision-recall curve by sweeping the decision
// threshold over the classifier's malware scores, from the most
// confident prediction down.
func PRCurve(c mlearn.Classifier, test *dataset.Instances) ([]PRPoint, error) {
	if test.NumClasses() != 2 {
		return nil, errors.New("eval: binary classification only")
	}
	type scored struct {
		s   float64
		pos bool
	}
	items := make([]scored, 0, test.NumRows())
	nPos := 0
	for i := range test.X {
		pos := test.Y[i] == 1
		if pos {
			nPos++
		}
		items = append(items, scored{s: mlearn.Score(c, test.X[i]), pos: pos})
	}
	if nPos == 0 {
		return nil, errors.New("eval: PR curve needs positive examples")
	}
	sort.Slice(items, func(a, b int) bool { return items[a].s > items[b].s })

	var pts []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		s := items[i].s
		for i < len(items) && items[i].s == s {
			if items[i].pos {
				tp++
			} else {
				fp++
			}
			i++
		}
		pts = append(pts, PRPoint{
			Recall:    float64(tp) / float64(nPos),
			Precision: float64(tp) / float64(tp+fp),
			Threshold: s,
		})
	}
	return pts, nil
}

// AveragePrecision integrates the PR curve (step-wise interpolation):
// the mean precision weighted by recall increments.
func AveragePrecision(pts []PRPoint) float64 {
	ap := 0.0
	prevRecall := 0.0
	for _, p := range pts {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap
}
