package eval

import (
	"reflect"
	"testing"

	"repro/internal/mlearn/reptree"
)

// TestCrossValidateWorkersIdentical is the determinism contract of
// parallel cross-validation: the fold assignment is computed before any
// worker starts and every fold trains from its own derived state, so
// the CVResult must be identical for any worker count — and identical
// to the plain CrossValidate entry point.
func TestCrossValidateWorkersIdentical(t *testing.T) {
	d := blobSet(240, 2.0, 11)
	tr := reptree.New()

	ref, err := CrossValidateWorkers(tr, d, 5, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CrossValidate(tr, d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, plain) {
		t.Fatalf("CrossValidate != CrossValidateWorkers(1):\n%+v\n%+v", plain, ref)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := CrossValidateWorkers(tr, d, 5, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: folds differ from sequential:\n%+v\n%+v", workers, got, ref)
		}
	}
}
