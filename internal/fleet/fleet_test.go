package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/micro"
	"repro/internal/source"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// stubModel is a fixed-score classifier: enough to drive chains and the
// engine without training anything. Stub chains cannot round-trip
// through gob, which is exactly what Config.NewChain exists for.
type stubModel struct{ score float64 }

func (m stubModel) Distribution(x []float64) []float64 {
	return []float64{1 - m.score, m.score}
}

func (m stubModel) DistributionInto(x []float64, out []float64) {
	out[0], out[1] = 1-m.score, m.score
}

// stubChainFactory builds fresh 4HPC → 2HPC → prior stub chains.
func stubChainFactory() func() (*core.FallbackChain, error) {
	return func() (*core.FallbackChain, error) {
		evs := micro.AllEvents()
		d4 := &core.Detector{BaseName: "Stub", Events: evs[:4], Model: stubModel{score: 0.8}}
		d2 := &core.Detector{BaseName: "Stub", Events: evs[:2], Model: stubModel{score: 0.6}}
		return core.NewFallbackChain([]*core.Detector{d4, d2},
			core.ChainConfig{Window: 3, PriorScore: 0.3})
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.NewChain == nil {
		cfg.NewChain = stubChainFactory()
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// collector gathers one stream's verdicts; only the owning shard's
// goroutine appends during Run, and reads happen after Run returns.
type collector struct{ verdicts []core.Verdict }

func (c *collector) add(v core.Verdict) { c.verdicts = append(c.verdicts, v) }

func requireGapFree(t *testing.T, id string, verdicts []core.Verdict, want, first int) {
	t.Helper()
	if len(verdicts) != want {
		t.Fatalf("stream %s: got %d verdicts, want %d", id, len(verdicts), want)
	}
	for i, v := range verdicts {
		if v.Interval != first+i {
			t.Fatalf("stream %s: verdict %d has interval %d, want %d", id, i, v.Interval, first+i)
		}
	}
}

// TestFleetMatchesPipelines is the golden test: every stream of a
// Block-policy fleet — shared shard model replicas, cross-stream
// batched inference, a single timer wheel — must emit a verdict stream
// bit-identical to a dedicated supervised pipeline fed by an
// identically-configured (fault-injected) source.
func TestFleetMatchesPipelines(t *testing.T) {
	const n = 60
	const streams = 9
	plan := &faults.Plan{Seed: 0xC0FFEE, Rate: 0.3}
	brCfg := supervise.BreakerConfig{FailAfter: 2, Cooldown: 3}
	apps := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 2})

	factory := stubChainFactory()
	tmpl, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	srcCfg := func(i int) supervise.MachineSourceConfig {
		app := apps[i%len(apps)]
		return supervise.MachineSourceConfig{
			Machine:     micro.FastConfig(),
			Run:         app.NewRun(0),
			Events:      tmpl.Events(),
			Total:       n,
			CycleBudget: 4000,
			Plan:        plan,
			Scope:       fmt.Sprintf("%s/stream%d", app.Name, i),
		}
	}

	e := newTestEngine(t, Config{
		NewChain:   factory,
		Shards:     3,
		WheelSlots: 4,
		Policy:     supervise.Block,
		Breaker:    brCfg,
	})
	got := make([]*collector, streams)
	for i := 0; i < streams; i++ {
		src, err := supervise.NewMachineSource(srcCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		got[i] = &collector{}
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    src,
			Intervals: n,
			OnVerdict: got[i].add,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < streams; i++ {
		chain, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		p, err := supervise.New(supervise.Config{
			Chain:          chain,
			Policy:         supervise.Block,
			Breaker:        brCfg,
			RestartBackoff: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		src, err := supervise.NewMachineSource(srcCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run(context.Background(), src, n)
		if err != nil {
			t.Fatal(err)
		}
		requireGapFree(t, fmt.Sprintf("s%d", i), got[i].verdicts, n, 0)
		for k := range want {
			if got[i].verdicts[k] != want[k] {
				t.Fatalf("stream s%d verdict %d: fleet %+v != pipeline %+v",
					i, k, got[i].verdicts[k], want[k])
			}
		}
	}

	snap := e.Stats(true)
	if snap.Streams != streams || snap.Live != 0 {
		t.Fatalf("fleet not drained: %+v", snap)
	}
	if snap.Verdicts != int64(streams*n) {
		t.Fatalf("fleet emitted %d verdicts, want %d", snap.Verdicts, streams*n)
	}
}

// TestFleetBoundedStreamsDrain: a Block fleet over clean synthetic
// sources finishes every bounded stream with a gap-free, loss-free
// verdict stream and Run returns on its own.
func TestFleetBoundedStreamsDrain(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, WheelSlots: 4, Policy: supervise.Block})
	horizons := []int{31, 57, 12, 40, 40, 7}
	cols := make([]*collector, len(horizons))
	for i, h := range horizons {
		cols[i] = &collector{}
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    source.NewSynthetic(uint64(i+1), 4),
			Intervals: h,
			OnVerdict: cols[i].add,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, h := range horizons {
		requireGapFree(t, fmt.Sprintf("s%d", i), cols[i].verdicts, h, 0)
		total += h
	}
	snap := e.Stats(true)
	if snap.Verdicts != int64(total) || snap.LostVerdicts != 0 {
		t.Fatalf("clean fleet degraded: %+v", snap)
	}
	// Drained shards are idle, not behind: lag must not keep growing
	// against the wheel once a shard has no live streams.
	for i, ss := range snap.Shards {
		if ss.LagRotations != 0 {
			t.Fatalf("idle shard %d reports lag of %d rotations", i, ss.LagRotations)
		}
	}
	for _, ss := range snap.PerStream {
		if !ss.Finished || ss.Breaker.Trips != 0 {
			t.Fatalf("stream %s not cleanly finished: %+v", ss.ID, ss)
		}
	}
}

// TestFleetSheddingRepairsTails: under DropOldest with a deliberately
// slow source and a one-batch queue, the unpaced wheel floods the
// shard, batches are shed — and every stream must still finish with
// exactly its horizon of gap-free verdicts, the holes repaired by the
// hold-last path and the tail by drain markers.
func TestFleetSheddingRepairsTails(t *testing.T) {
	e := newTestEngine(t, Config{
		Shards:         1,
		WheelSlots:     4,
		Policy:         supervise.DropOldest,
		PendingBatches: 1,
	})
	const streams, horizon = 8, 20
	cols := make([]*collector, streams)
	for i := 0; i < streams; i++ {
		inner := source.NewSynthetic(uint64(i+1), 4)
		cols[i] = &collector{}
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    slowSource{inner: inner, delay: 200 * time.Microsecond},
			Intervals: horizon,
			OnVerdict: cols[i].add,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		requireGapFree(t, fmt.Sprintf("s%d", i), cols[i].verdicts, horizon, 0)
	}
	snap := e.Stats(false)
	if snap.Verdicts != int64(streams*horizon) {
		t.Fatalf("verdicts %d, want %d", snap.Verdicts, streams*horizon)
	}
	if snap.ShedIntervals == 0 {
		t.Fatal("expected the flooded shard to shed work")
	}
	if snap.LostVerdicts == 0 {
		t.Fatal("shed intervals must surface as lost verdicts")
	}
}

// slowSource delays every read, simulating a source slower than the
// harvest rate.
type slowSource struct {
	inner supervise.BufferedSource
	delay time.Duration
}

func (s slowSource) Read(ctx context.Context, interval int) ([]uint64, error) {
	time.Sleep(s.delay)
	return s.inner.Read(ctx, interval)
}

// TestFleetRuntimeAddRemove exercises concurrent stream churn under
// fault injection while the paced engine runs — the -race workout — and
// checks that removal actually retires streams so the fleet drains.
func TestFleetRuntimeAddRemove(t *testing.T) {
	plan := &faults.Plan{Seed: 0xFEED, Rate: 0.4}
	apps := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})
	app := apps[0]
	factory := stubChainFactory()
	tmpl, err := factory()
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, Config{
		NewChain:   factory,
		Shards:     2,
		WheelSlots: 4,
		Interval:   2 * time.Millisecond,
		Policy:     supervise.DropOldest,
		Breaker:    supervise.BreakerConfig{FailAfter: 2, Cooldown: 3},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- e.Run(ctx) }()

	newSource := func(i int) supervise.Source {
		src, serr := supervise.NewMachineSource(supervise.MachineSourceConfig{
			Machine:     micro.FastConfig(),
			Run:         app.NewRun(0),
			Events:      tmpl.Events(),
			Total:       1 << 20,
			CycleBudget: 2000,
			Plan:        plan,
			Scope:       fmt.Sprintf("churn%d", i),
		})
		if serr != nil {
			t.Error(serr)
			return source.NewSynthetic(uint64(i+1), 4)
		}
		return src
	}

	// Concurrent adders: half bounded, half unbounded.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 6; k++ {
				i := g*6 + k
				horizon := 30
				if i%2 == 1 {
					horizon = 0 // unbounded; removed below
				}
				if err := e.Add(StreamConfig{
					ID:        fmt.Sprintf("s%d", i),
					Source:    newSource(i),
					Intervals: horizon,
				}); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	// Concurrent stats reader.
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for i := 0; i < 50; i++ {
			e.Stats(true)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-statsDone

	// Retire the unbounded streams so the fleet can drain.
	for i := 0; i < 24; i++ {
		if i%2 == 1 {
			if err := e.Remove(fmt.Sprintf("s%d", i)); err != nil {
				t.Error(err)
			}
		}
	}
	if err := <-runErr; err != nil {
		t.Fatalf("fleet did not drain after removals: %v", err)
	}
	snap := e.Stats(true)
	if snap.Streams != 24 || snap.Live != 0 {
		t.Fatalf("churn left the fleet undrained: %+v", snap)
	}
	for _, ss := range snap.PerStream {
		if !ss.Removed && ss.Verdicts != 30 {
			t.Fatalf("bounded stream %s emitted %d verdicts, want 30", ss.ID, ss.Verdicts)
		}
	}
}

// TestFleetCheckpointRestore: a fleet checkpoint written on the
// rotation cadence (plus the final save at drain) restores per-stream
// chain state by ID, so a restarted fleet's verdict intervals continue
// where the previous process stopped.
func TestFleetCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	store, err := core.NewCheckpointStore(dir, "fleet", StateVersion)
	if err != nil {
		t.Fatal(err)
	}
	const streams, horizon = 5, 40
	mk := func() *Engine {
		return newTestEngine(t, Config{
			Shards:          2,
			WheelSlots:      4,
			Policy:          supervise.Block,
			Checkpoint:      store,
			CheckpointEvery: 8,
		})
	}

	e := mk()
	for i := 0; i < streams; i++ {
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    source.NewSynthetic(uint64(i+1), 4),
			Intervals: horizon,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if snap := e.Stats(false); snap.CheckpointsWritten == 0 {
		t.Fatalf("no checkpoints written: %+v", snap)
	}

	// "Restart": fresh engine, recover, re-add the same IDs.
	e2 := mk()
	gen, quarantined, err := e2.RestoreState()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || len(quarantined) != 0 {
		t.Fatalf("unexpected recovery: gen %d quarantined %v", gen, quarantined)
	}
	cols := make([]*collector, streams)
	for i := 0; i < streams; i++ {
		cols[i] = &collector{}
		if err := e2.Add(StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    source.NewSynthetic(uint64(100+i), 4),
			Intervals: 10,
			OnVerdict: cols[i].add,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		// The restored chain resumes interval numbering at horizon.
		requireGapFree(t, fmt.Sprintf("s%d", i), cols[i].verdicts, 10, horizon)
	}
}

// TestFleetZeroAllocSteadyState gates the whole per-interval path —
// wheel harvest, batch dispatch, source read, BeginObserve, batched
// scoring, CommitScore, accounting — at zero heap allocations per
// interval per stream, stepping the engine synchronously.
func TestFleetZeroAllocSteadyState(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, WheelSlots: 4, Policy: supervise.Block})
	for i := 0; i < 16; i++ {
		if err := e.Add(StreamConfig{
			ID:     fmt.Sprintf("s%d", i),
			Source: source.NewSynthetic(uint64(i+1), 4),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	step := func() {
		e.tickOnce(ctx)
		for _, sh := range e.shards {
			for sh.step(ctx) {
			}
		}
	}
	// Warm every free list and scratch buffer through several full
	// rotations before measuring.
	for i := 0; i < 64; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(300, step); allocs != 0 {
		t.Fatalf("steady-state tick allocates %.2f times (4 streams/tick), want 0", allocs)
	}
}

// countingModel is a fixed-score classifier that counts every
// evaluation, shared across all chains built by one factory.
type countingModel struct {
	n     *atomic.Int64
	score float64
}

func (m countingModel) Distribution(x []float64) []float64 {
	m.n.Add(1)
	return []float64{1 - m.score, m.score}
}

func (m countingModel) DistributionInto(x []float64, out []float64) {
	m.n.Add(1)
	out[0], out[1] = 1-m.score, m.score
}

// TestFleetAddDoesNotEvaluateModels: Add assembles a stream's chain as
// a sibling of the shard's template without evaluating the shard's
// shared models. Re-probing them (as NewFallbackChain's class-count
// probe does) would race with the owning shard's concurrent scoring:
// ensemble models write per-model scratch on every evaluation.
func TestFleetAddDoesNotEvaluateModels(t *testing.T) {
	var evals atomic.Int64
	factory := func() (*core.FallbackChain, error) {
		evs := micro.AllEvents()
		d4 := &core.Detector{BaseName: "Probe", Events: evs[:4], Model: countingModel{n: &evals, score: 0.8}}
		d2 := &core.Detector{BaseName: "Probe", Events: evs[:2], Model: countingModel{n: &evals, score: 0.6}}
		return core.NewFallbackChain([]*core.Detector{d4, d2},
			core.ChainConfig{Window: 3, PriorScore: 0.3})
	}
	e := newTestEngine(t, Config{NewChain: factory, Shards: 2, WheelSlots: 2})
	before := evals.Load() // engine construction probes; Add must not
	for i := 0; i < 8; i++ {
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    source.NewSynthetic(uint64(i+1), 4),
			Intervals: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := evals.Load() - before; got != 0 {
		t.Fatalf("Add evaluated shard models %d times; chain assembly must not touch live models", got)
	}
}

// TestFleetNoIDReuseAfterFinish: a finished stream's ID stays taken.
// Per-stream stats and checkpoint state maps are keyed by ID, so
// accepting a reused ID would silently alias two streams.
func TestFleetNoIDReuseAfterFinish(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, WheelSlots: 2})
	if err := e.Add(StreamConfig{ID: "a", Source: source.NewSynthetic(1, 4), Intervals: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(StreamConfig{ID: "a", Source: source.NewSynthetic(2, 4), Intervals: 3}); err == nil {
		t.Fatal("finished stream's ID accepted again")
	}
	if err := e.Add(StreamConfig{ID: "b", Source: source.NewSynthetic(3, 4), Intervals: 3}); err != nil {
		t.Fatalf("fresh ID rejected: %v", err)
	}
}

// TestQueuePutAfterClose: a stage racing shutdown must fail with an
// error instead of silently reserving a slot — a silently dropped
// checkpoint marker would strand its collector forever.
func TestQueuePutAfterClose(t *testing.T) {
	q := newSPSCRing(2, supervise.Block)
	q.close()
	if _, _, err := q.stage(context.Background()); !errors.Is(err, errQueueClosed) {
		t.Fatalf("stage on closed ring returned %v, want errQueueClosed", err)
	}
}

func TestFleetAddValidation(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, WheelSlots: 2})
	src := source.NewSynthetic(1, 4)
	if err := e.Add(StreamConfig{Source: src}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if err := e.Add(StreamConfig{ID: "a"}); err == nil {
		t.Fatal("missing source accepted")
	}
	if err := e.Add(StreamConfig{ID: "a", Source: src, Intervals: -1}); err == nil {
		t.Fatal("negative horizon accepted")
	}
	if err := e.Add(StreamConfig{ID: "a", Source: src, Intervals: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(StreamConfig{ID: "a", Source: src, Intervals: 1}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := e.Remove("nope"); err == nil {
		t.Fatal("removing unknown stream succeeded")
	}
}

func TestSyntheticSourceDeterministic(t *testing.T) {
	ctx := context.Background()
	a := source.NewSynthetic(7, 4)
	b := source.NewSynthetic(7, 4)
	buf := make([]uint64, 4)
	for i := 0; i < 100; i++ {
		va, err := a.ReadInto(ctx, i, buf)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]uint64(nil), va...)
		vb, err := b.Read(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != vb[j] {
				t.Fatalf("interval %d slot %d: %d != %d", i, j, got[j], vb[j])
			}
			if got[j] == 0 {
				t.Fatalf("interval %d slot %d: synthetic source emitted zero", i, j)
			}
		}
	}
}
