package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/supervise"
)

// handoffVals gives stream i a distinct deterministic sample sequence
// so a migrated timeline can be replayed against a reference chain.
func handoffVals(i, seq int) []uint64 {
	base := uint64(i*1000 + seq*4)
	return []uint64{base + 1, base + 2, base + 3, base + 4}
}

// TestHandoffCaptureSeedContinuesBitIdentical is the migration golden
// test: states captured mid-run on one engine and seeded into a second
// must let the second engine continue every timeline bit-identically to
// one unbroken reference chain fed the full sample sequence.
func TestHandoffCaptureSeedContinuesBitIdentical(t *testing.T) {
	const streams, firstLeg, total = 2, 6, 10
	cfg := Config{Shards: 2, WheelSlots: 4, Interval: time.Millisecond, Policy: supervise.Block}

	engA := newTestEngine(t, cfg)
	srcsA := make([]*queuedTestSource, streams)
	for i := range srcsA {
		srcsA[i] = &queuedTestSource{}
		if err := engA.Add(StreamConfig{ID: fmt.Sprintf("s%d", i), Source: srcsA[i]}); err != nil {
			t.Fatal(err)
		}
	}
	runA := make(chan error, 1)
	go func() { runA <- engA.Run(context.Background()) }()
	for seq := 0; seq < firstLeg; seq++ {
		for i, src := range srcsA {
			src.push(handoffVals(i, seq))
		}
	}
	waitUntil(t, "first leg scored", func() bool {
		return engA.Stats(false).Verdicts == streams*firstLeg
	})

	// Mid-run capture rides the shard queues: every stream present, each
	// state at the stream's current interval.
	ctx := context.Background()
	mid, err := engA.CaptureStates(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != streams {
		t.Fatalf("captured %d states, want %d", len(mid), streams)
	}
	for id, st := range mid {
		if st.Interval != firstLeg {
			t.Fatalf("stream %s captured at interval %d, want %d", id, st.Interval, firstLeg)
		}
	}
	sub, err := engA.CaptureStates(ctx, []string{"s0", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 {
		t.Fatalf("subset capture returned %d states: %v", len(sub), sub)
	}
	if _, ok := sub["s0"]; !ok {
		t.Fatal("subset capture missing s0")
	}
	if un := engA.Unfinished(); len(un) != streams || un[0] != "s0" || un[1] != "s1" {
		t.Fatalf("unfinished %v", un)
	}

	// Old owner retires; the post-Run capture reads chains directly and
	// still covers the (now finished) streams.
	for _, src := range srcsA {
		src.closed.Store(true)
	}
	select {
	case err := <-runA:
		if err != nil {
			t.Fatalf("engine A Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine A did not finish")
	}
	if un := engA.Unfinished(); len(un) != 0 {
		t.Fatalf("finished engine lists unfinished streams %v", un)
	}
	fin, err := engA.CaptureStates(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != streams {
		t.Fatalf("final capture has %d states, want %d", len(fin), streams)
	}

	// New owner seeds the states; Add claims them exactly like a disk
	// checkpoint and the timelines resume at the capture point.
	engB := newTestEngine(t, cfg)
	if n := engB.SeedRestored(fin); n != streams {
		t.Fatalf("seeded %d states, want %d", n, streams)
	}
	if iv, ok := engB.RestoredInterval("s0"); !ok || iv != firstLeg {
		t.Fatalf("restored interval %d/%v, want %d", iv, ok, firstLeg)
	}
	srcsB := make([]*queuedTestSource, streams)
	cols := make([]*collector, streams)
	for i := range srcsB {
		srcsB[i] = &queuedTestSource{}
		cols[i] = &collector{}
		if err := engB.Add(StreamConfig{
			ID: fmt.Sprintf("s%d", i), Source: srcsB[i], OnVerdict: cols[i].add,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Claimed states leave the pending table, and a live ID refuses a
	// re-seed: the local timeline is now authoritative.
	if _, ok := engB.RestoredInterval("s0"); ok {
		t.Fatal("claimed state still pending")
	}
	if n := engB.SeedRestored(fin); n != 0 {
		t.Fatalf("re-seed of live IDs installed %d states", n)
	}
	runB := make(chan error, 1)
	go func() { runB <- engB.Run(context.Background()) }()
	for seq := firstLeg; seq < total; seq++ {
		for i, src := range srcsB {
			src.push(handoffVals(i, seq))
		}
	}
	for _, src := range srcsB {
		src.closed.Store(true)
	}
	select {
	case err := <-runB:
		if err != nil {
			t.Fatalf("engine B Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine B did not finish")
	}

	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%d", i)
		requireGapFree(t, id, cols[i].verdicts, total-firstLeg, firstLeg)
		ref, err := stubChainFactory()()
		if err != nil {
			t.Fatal(err)
		}
		for seq := 0; seq < total; seq++ {
			want, err := ref.Observe(handoffVals(i, seq))
			if err != nil {
				t.Fatal(err)
			}
			if seq < firstLeg {
				continue
			}
			if got := cols[i].verdicts[seq-firstLeg]; got != want {
				t.Fatalf("stream %s interval %d: migrated %+v != reference %+v", id, seq, got, want)
			}
		}
	}
}

// TestSeedRestoredMonotonicAndGuarded pins the replacement rules: only
// a strictly newer snapshot replaces a pending one, and an ID that has
// ever been added locally refuses external states outright.
func TestSeedRestoredMonotonicAndGuarded(t *testing.T) {
	ch, err := stubChainFactory()()
	if err != nil {
		t.Fatal(err)
	}
	snapAt := func(iv int) core.ChainState {
		for ch.State().Interval < iv {
			if _, err := ch.Observe(handoffVals(0, ch.State().Interval)); err != nil {
				t.Fatal(err)
			}
		}
		return ch.State()
	}
	st3, st5 := snapAt(3), snapAt(5)

	e := newTestEngine(t, Config{Shards: 1, WheelSlots: 2})
	if n := e.SeedRestored(map[string]core.ChainState{"x": st3}); n != 1 {
		t.Fatalf("fresh seed installed %d", n)
	}
	if n := e.SeedRestored(map[string]core.ChainState{"x": st3}); n != 0 {
		t.Fatalf("equal-interval re-seed installed %d", n)
	}
	if n := e.SeedRestored(map[string]core.ChainState{"x": st5}); n != 1 {
		t.Fatalf("newer seed installed %d", n)
	}
	if n := e.SeedRestored(map[string]core.ChainState{"x": st3}); n != 0 {
		t.Fatal("older snapshot rewound the pending state")
	}
	if iv, ok := e.RestoredInterval("x"); !ok || iv != 5 {
		t.Fatalf("pending interval %d/%v, want 5", iv, ok)
	}
	if err := e.Add(StreamConfig{ID: "x", Source: &queuedTestSource{}}); err != nil {
		t.Fatal(err)
	}
	if n := e.SeedRestored(map[string]core.ChainState{"x": st5}); n != 0 {
		t.Fatal("used ID accepted an external state")
	}
}

// TestCaptureAfterCancelledRun covers the aborted-shutdown shape the
// serve binary's second SIGTERM produces: after a cancelled Run the
// engine still names its abandoned streams, captures their states via
// the direct-read path, and SaveState writes a best-effort checkpoint a
// restarted engine can resume from.
func TestCaptureAfterCancelledRun(t *testing.T) {
	const streams, scored = 2, 4
	store, err := core.NewCheckpointStore(t.TempDir(), "fleet", StateVersion)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Shards: 2, WheelSlots: 4, Interval: time.Millisecond,
		Policy: supervise.Block, Checkpoint: store,
	}
	e := newTestEngine(t, cfg)
	srcs := make([]*queuedTestSource, streams)
	for i := range srcs {
		srcs[i] = &queuedTestSource{}
		if err := e.Add(StreamConfig{ID: fmt.Sprintf("c%d", i), Source: srcs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	run := make(chan error, 1)
	go func() { run <- e.Run(ctx) }()
	for seq := 0; seq < scored; seq++ {
		for i, src := range srcs {
			src.push(handoffVals(i, seq))
		}
	}
	waitUntil(t, "samples scored", func() bool {
		return e.Stats(false).Verdicts == streams*scored
	})
	cancel()
	if err := <-run; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v", err)
	}

	if un := e.Unfinished(); len(un) != streams || un[0] != "c0" || un[1] != "c1" {
		t.Fatalf("abandoned streams %v", un)
	}
	states, err := e.CaptureStates(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, st := range states {
		if st.Interval != scored {
			t.Fatalf("stream %s captured at %d, want %d", id, st.Interval, scored)
		}
	}
	if err := e.SaveState(); err != nil {
		t.Fatalf("best-effort checkpoint: %v", err)
	}

	e2 := newTestEngine(t, cfg)
	if _, _, err := e2.RestoreState(); err != nil {
		t.Fatal(err)
	}
	if iv, ok := e2.RestoredInterval("c0"); !ok || iv != scored {
		t.Fatalf("restarted engine resumes at %d/%v, want %d", iv, ok, scored)
	}
}
