package fleet

import "context"

// SyntheticSource is a deterministic, allocation-free sample source for
// fleet benchmarks and engine tests: a cheap xorshift stream of
// plausible healthy counter readings (never zero, never repeating, so
// the chain stays on its primary stage). The point is to make engine
// overhead — not simulated microarchitecture — dominate what a fleet
// benchmark measures. Two sources built with the same seed produce the
// same reading sequence, which is what lets a fleet run be compared
// verdict-for-verdict against independent pipelines.
type SyntheticSource struct {
	width int
	state uint64
}

// NewSyntheticSource builds a source emitting width-wide readings.
func NewSyntheticSource(seed uint64, width int) *SyntheticSource {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	if width < 1 {
		width = 1
	}
	return &SyntheticSource{width: width, state: seed}
}

// Read implements supervise.Source.
func (s *SyntheticSource) Read(ctx context.Context, interval int) ([]uint64, error) {
	return s.ReadInto(ctx, interval, make([]uint64, s.width))
}

// ReadInto implements supervise.BufferedSource: the reading lands in
// buf with no allocation.
func (s *SyntheticSource) ReadInto(ctx context.Context, interval int, buf []uint64) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cap(buf) < s.width {
		buf = make([]uint64, s.width)
	}
	buf = buf[:s.width]
	x := s.state
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = 1_000 + x%99_991
	}
	s.state = x
	return buf, nil
}
