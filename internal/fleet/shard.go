package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/source"
)

// entry is one stream's due interval inside a harvest batch. Streams
// are recorded by pointer into the engine's slab blocks — resolved once
// by the wheel under its lock; the shard never touches a map or the
// block table.
type entry struct {
	s        *stream
	interval int
	// drain marks a tail-repair entry for a stream whose final
	// harvests were shed: the shard emits hold-last verdicts up
	// through interval instead of reading the source.
	drain bool
}

// batch is a coalesced span of wheel ticks' due streams for one shard
// (each stream appears at most once — the wheel force-flushes at every
// rotation boundary, which the BeginObserve/CommitScore scratch
// aliasing depends on), plus the two marker flavours that ride the same
// ring so they stay ordered against normal work: drain batches (tail
// repair, see entry.drain) and checkpoint markers (ckpt != nil).
type batch struct {
	rot     int64
	at      time.Time
	drain   bool
	ckpt    *ckptReq
	ckStrms []*stream // the shard's streams to checkpoint (ckpt != nil)
	entries []entry
}

// ckptReq coordinates one fleet-wide checkpoint or state capture: every
// shard contributes its own streams' chain states (each chain is only
// touched by its owning shard, so the marker must flow through the
// shard's ring), and a collector persists or returns the assembled map
// once all shards have reported. The WaitGroup is charged one count per
// shard up front, at request creation — a request parked on the wheel's
// pending list is aborted with the matching Dones if Run exits first.
type ckptReq struct {
	wg      sync.WaitGroup
	aborted atomic.Bool // a shard or the wheel shut down before contributing
	mu      sync.Mutex
	states  map[string]core.ChainState
	// perShard[i] is shard i's slice of streams to snapshot.
	perShard [][]*stream
}

// markKind classifies what the gather pass decided about one entry.
const (
	markSkip  = iota // removed, stale, or already emitted as lost
	markScore        // feature vector gathered; awaiting its stage's batch pass
)

// entryMark is the per-entry scratch carrying gather results to the
// batched scoring and demux passes.
type entryMark struct {
	kind  uint8
	stage int
	x     []float64 // aliases the stream chain's scratch until demux
	score float64
}

// shard is one worker: it owns a full replica of the trained chain
// (models reuse internal scratch, so replicas are what make shards
// independent), one Batcher per stage, and the run-time chains of every
// stream assigned to it. All chain mutation and scoring for those
// streams happens on the shard's single goroutine; the wheel only
// touches streams' atomics.
type shard struct {
	e   *Engine
	idx int

	// tmpl is the shard's chain replica; stream chains are assembled as
	// its siblings (shared models, per-stream run-time state carved
	// from the shard's arena slabs) without touching the models, so Add
	// stays safe mid-Run.
	tmpl     *core.FallbackChain
	arena    *core.SiblingArena
	batchers []*core.Batcher
	width    int

	q *spscRing

	// readBuf is the shard's single sample buffer: reads happen one
	// entry at a time on this goroutine, so one buffer replaces the
	// mutex-pooled free list the pipeline needs.
	readBuf []uint64

	// Scratch reused across batches: marks mirrors the entry slice,
	// byStage[s] collects mark indices for stage s's one ScoreBatch
	// pass, rows/scores are that pass's matrix and output.
	marks   []entryMark
	byStage [][]int
	rows    [][]float64
	scores  []float64

	// Per-batch verdict counts, flushed to the atomics once per batch
	// (shard goroutine only).
	emitN int64
	lostN int64

	liveStreams   atomic.Int64 // live (unpruned) streams assigned here
	batches       atomic.Int64
	intervals     atomic.Int64
	shedBatches   atomic.Int64
	shedIntervals atomic.Int64
	lastRot       atomic.Int64
	lat           latHist
}

func newShard(e *Engine, idx int, tmpl *core.FallbackChain, cfg Config) *shard {
	dets := tmpl.Detectors()
	sh := &shard{
		e:        e,
		idx:      idx,
		tmpl:     tmpl,
		arena:    tmpl.NewSiblingArena(),
		batchers: make([]*core.Batcher, len(dets)),
		width:    len(tmpl.Events()),
		q:        newSPSCRing(cfg.pendingBatches(), cfg.Policy),
		readBuf:  make([]uint64, len(tmpl.Events())),
		byStage:  make([][]int, len(dets)),
	}
	for i, d := range dets {
		sh.batchers[i] = d.NewTierBatcher(cfg.tier())
	}
	return sh
}

// run is the shard worker loop.
func (sh *shard) run(ctx context.Context) {
	defer sh.drainTail()
	for {
		b, ok := sh.q.get(ctx)
		if !ok {
			return
		}
		sh.process(ctx, b)
		sh.q.consumed()
	}
}

// step processes at most one queued batch synchronously; white-box
// tests use it to drive the engine without goroutines.
func (sh *shard) step(ctx context.Context) bool {
	b, ok := sh.q.tryGet()
	if !ok {
		return false
	}
	sh.process(ctx, b)
	sh.q.consumed()
	return true
}

// drainTail empties the ring after shutdown so a stranded checkpoint
// marker cannot leave its collector waiting forever.
func (sh *shard) drainTail() {
	for {
		b, ok := sh.q.tryGet()
		if !ok {
			return
		}
		if b.ckpt != nil {
			b.ckpt.aborted.Store(true)
			b.ckpt.wg.Done()
		}
		sh.q.consumed()
	}
}

// process handles one batch: checkpoint markers snapshot chain states;
// harvest batches run the gather → batched-score → demux pipeline.
func (sh *shard) process(ctx context.Context, b *batch) {
	if b.ckpt != nil {
		for _, s := range b.ckStrms {
			if s.removed.Load() {
				continue
			}
			st := s.chain.State()
			b.ckpt.mu.Lock()
			b.ckpt.states[s.id] = st
			b.ckpt.mu.Unlock()
		}
		b.ckpt.wg.Done()
		return
	}

	// Gather: per entry, repair any done-gap with hold-last verdicts,
	// read the source, and run BeginObserve to collect the active
	// stage's feature vector. Chain operations for a given stream are
	// strictly interval-ordered: gaps first, then this interval.
	sh.emitN, sh.lostN = 0, 0
	n := len(b.entries)
	if cap(sh.marks) < n {
		sh.marks = make([]entryMark, n)
	}
	sh.marks = sh.marks[:n]
	for st := range sh.byStage {
		sh.byStage[st] = sh.byStage[st][:0]
	}
	for i := range b.entries {
		en := &b.entries[i]
		s := en.s
		m := &sh.marks[i]
		m.kind = markSkip
		if s.qsrc != nil && !en.drain {
			// The wheel claimed one pending sample when it staged this
			// entry; release the claim whatever becomes of it.
			s.inflight.Add(-1)
		}
		if s.removed.Load() {
			continue
		}
		done := int(s.done.Load())
		if en.interval < done {
			continue // already repaired past this interval by a drain
		}
		for ; done < en.interval; done++ {
			sh.emitLost(s)
		}
		if en.drain {
			sh.emitLost(s)
			continue
		}
		if !s.br.Allow() {
			sh.emitLost(s)
			continue
		}
		var vals []uint64
		var err error
		if s.bsrc != nil {
			vals, err = s.bsrc.ReadInto(ctx, en.interval, sh.readBuf)
		} else {
			vals, err = s.src.Read(ctx, en.interval)
		}
		switch {
		case err == nil:
			s.br.OnSuccess()
		case errors.Is(err, source.ErrSampleLost):
			sh.emitLost(s)
			continue
		case ctx.Err() != nil:
			// Shutting down mid-batch: abandon the remaining entries.
			sh.flushCounts(b)
			return
		default:
			s.srcFails.Add(1)
			s.br.OnFailure(err)
			sh.emitLost(s)
			continue
		}
		if len(vals) != sh.width {
			s.badFrames.Add(1)
			sh.emitLost(s)
			continue
		}
		stage, x, oerr := s.chain.BeginObserve(vals)
		if oerr != nil {
			s.badFrames.Add(1)
			sh.emitLost(s)
			continue
		}
		m.kind = markScore
		m.stage = stage
		m.x = x
		if stage < len(sh.batchers) {
			sh.byStage[stage] = append(sh.byStage[stage], i)
		}
	}

	// Batched inference: one ScoreBatch pass per stage over every
	// gathered feature vector — the cross-stream matrix pass that lets
	// N streams share one model evaluation context.
	for st := range sh.byStage {
		idxs := sh.byStage[st]
		if len(idxs) == 0 {
			continue
		}
		rows := sh.rows[:0]
		for _, i := range idxs {
			rows = append(rows, sh.marks[i].x)
		}
		sh.rows = rows
		if cap(sh.scores) < len(idxs) {
			sh.scores = make([]float64, len(idxs))
		}
		out := sh.scores[:len(idxs)]
		sh.batchers[st].ScoreBatch(rows, out)
		for k, i := range idxs {
			sh.marks[i].score = out[k]
		}
	}

	// Demux: commit each verdict through its stream's chain, in harvest
	// order.
	for i := range b.entries {
		m := &sh.marks[i]
		if m.kind != markScore {
			continue
		}
		s := b.entries[i].s
		score := m.score
		if m.stage >= len(sh.batchers) {
			score = s.chain.Prior()
		}
		sh.emit(s, s.chain.CommitScore(score), false)
	}
	sh.flushCounts(b)
	sh.batches.Add(1)
	sh.lastRot.Store(b.rot)
}

// flushCounts folds the batch's local verdict counters into the shared
// atomics and records one interval-weighted latency sample — per batch,
// not per verdict, which keeps the clock read and the contended adds
// off the per-stream path.
func (sh *shard) flushCounts(b *batch) {
	if sh.emitN == 0 {
		return
	}
	sh.intervals.Add(sh.emitN)
	sh.e.verdictCount.Add(sh.emitN)
	if sh.lostN > 0 {
		sh.e.lostCount.Add(sh.lostN)
	}
	sh.lat.record(time.Since(b.at), sh.emitN)
	sh.emitN, sh.lostN = 0, 0
}

// emit delivers one verdict: stream accounting, the optional callback,
// and horizon completion. Fleet-wide counters are batched in
// flushCounts.
func (sh *shard) emit(s *stream, v core.Verdict, lost bool) {
	done := s.done.Add(1)
	if lost {
		s.lost.Add(1)
		sh.lostN++
	}
	sh.emitN++
	s.activeStage.Store(int32(s.chain.ActiveStage()))
	if s.onVerdict != nil {
		s.onVerdict(v)
	}
	if s.horizon > 0 && done >= int64(s.horizon) {
		s.finish()
	}
}

// emitLost emits one hold-last verdict for an interval with no usable
// reading.
func (sh *shard) emitLost(s *stream) {
	sh.emit(s, s.chain.ObserveLost(), true)
}
