package fleet

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/supervise"
)

// Shard latency telemetry is a fixed log-bucketed histogram instead of
// a sample ring: recording is one atomic add per batch (no clock reads
// or stores per verdict, no sample eviction bias under load), and the
// histogram yields p50/p99/p999 plus the full interval-lag distribution
// that /stats exports. Buckets are microseconds with 8 sub-buckets per
// octave (≤12.5% relative error): values 0–7 µs map to themselves, and
// a larger value with top bit at position p lands in bucket
// (p-2)*8 + next-three-bits.
const latHistBuckets = 384 // covers every representable duration

type latHist struct {
	total   atomic.Int64
	buckets [latHistBuckets]atomic.Int64
}

// latBucket maps a latency in microseconds to its bucket index.
func latBucket(us int64) int {
	v := uint64(us)
	if v < 8 {
		return int(v)
	}
	p := uint(bits.Len64(v)) - 1 // top-bit position, >= 3
	b := int((p-2)*8 + uint((v>>(p-3))&7))
	if b >= latHistBuckets {
		return latHistBuckets - 1
	}
	return b
}

// latBucketUpper returns bucket b's inclusive upper bound in
// microseconds.
func latBucketUpper(b int) int64 {
	if b < 8 {
		return int64(b)
	}
	oct, sub := uint(b/8), uint64(b%8)
	return int64((9+sub)<<(oct-1)) - 1
}

// record books n intervals completing with latency d. One call per
// batch, weighted by the batch's interval count.
func (h *latHist) record(d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	us := int64(d / time.Microsecond)
	if us < 0 {
		us = 0
	}
	h.buckets[latBucket(us)].Add(n)
	h.total.Add(n)
}

// snapshot copies the bucket counts (not atomically consistent across
// buckets, which percentile estimation tolerates).
func (h *latHist) snapshot(counts *[latHistBuckets]int64) (total int64) {
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	return total
}

// quantile returns the q-quantile (0..1) of a snapshot, in microseconds
// (the containing bucket's upper bound; 0 with no samples).
func quantile(counts *[latHistBuckets]int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return float64(latBucketUpper(i))
		}
	}
	return float64(latBucketUpper(latHistBuckets - 1))
}

// LagBucket is one bucket of a shard's harvest-to-verdict latency
// distribution: Count intervals completed with latency of at most
// UpToMicros (and above the preceding bucket's bound).
type LagBucket struct {
	UpToMicros int64
	Count      int64
}

// StreamSnapshot is the externally visible state of one monitored
// stream.
type StreamSnapshot struct {
	ID    string
	Shard int
	Slot  int
	// Scheduled is how many intervals the wheel has harvested for the
	// stream; Verdicts how many the shard has emitted (Scheduled -
	// Verdicts is the stream's in-flight/shed backlog).
	Scheduled int
	Verdicts  int64
	// LostVerdicts were emitted by the chain's hold-last path (dropped
	// samples, open breaker, failed reads, shed batches).
	LostVerdicts   int64
	SourceFailures int64
	BadFrames      int64
	// ActiveStage names the fallback-chain stage that scored the most
	// recent verdict ("" before the first one).
	ActiveStage string
	Breaker     supervise.BreakerSnapshot
	Finished    bool
	Removed     bool
}

// ShardSnapshot is the health of one worker shard.
type ShardSnapshot struct {
	// Streams currently assigned (live, not yet pruned).
	Streams int
	// Batches processed and intervals (verdicts) emitted.
	Batches   int64
	Intervals int64
	// ShedBatches/ShedIntervals count work discarded by drop-oldest
	// backpressure on the shard's ring.
	ShedBatches   int64
	ShedIntervals int64
	// QueueDepth is the current batch backlog; LagRotations how many
	// wheel rotations the shard trails the harvester by.
	QueueDepth   int
	LagRotations int64
	// CompiledStages is how many of the shard's per-stage batchers score
	// through a lowered fast path — compiled or quantized (0 with
	// Config.Interpreted or when no stage model lowers).
	CompiledStages int
	// QuantizedStages is how many of those score through the quantized
	// fixed-point kernels specifically (0 unless Config.Tier is
	// core.TierQuantized; stages without a quantized lowering fall back
	// to compiled and count only in CompiledStages).
	QuantizedStages int
	// P50/P99/P999 harvest-to-verdict latency since the shard started,
	// in microseconds (histogram upper bounds, ≤12.5% relative error).
	P50LatencyMicros  float64
	P99LatencyMicros  float64
	P999LatencyMicros float64
	// LagHistogram is the full harvest-to-verdict latency distribution
	// (non-empty buckets only, ascending).
	LagHistogram []LagBucket `json:",omitempty"`
}

// Snapshot is a point-in-time view of the whole fleet — what
// hmd-serve's /stats endpoint returns in fleet mode.
type Snapshot struct {
	// Tier is the configured inference tier ("compiled", "quantized",
	// "interpreted") — what operators check to confirm which lowering a
	// fleet actually runs.
	Tier string
	// Streams ever added; Live of those still being scheduled.
	Streams int
	Live    int
	// Draining reports that Drain was called: the engine is finishing
	// existing streams and admitting no new ones.
	Draining bool
	// Rotations the wheel has completed (each rotation harvests every
	// live stream once).
	Rotations int64
	Verdicts  int64
	// LostVerdicts across all streams (see StreamSnapshot).
	LostVerdicts int64
	// ShedIntervals across all shards.
	ShedIntervals      int64
	CheckpointsWritten int64
	CheckpointErrors   int64
	Shards             []ShardSnapshot
	// PerStream is populated only when requested (Stats(true) or
	// StatsPage); at fleet scale the aggregate is the cheap default.
	// PerStreamTotal/PerStreamOffset frame a StatsPage window against
	// the full admission-ordered stream list.
	PerStream       []StreamSnapshot `json:",omitempty"`
	PerStreamTotal  int              `json:",omitempty"`
	PerStreamOffset int              `json:",omitempty"`
}

// Stats returns a point-in-time snapshot of the fleet. Safe to call
// concurrently with Run. includeStreams adds the full per-stream
// breakdown, which is O(streams) to build — at density, prefer
// StatsPage.
func (e *Engine) Stats(includeStreams bool) Snapshot {
	if includeStreams {
		return e.statsPage(0, -1, true)
	}
	return e.statsPage(0, 0, false)
}

// StatsPage is Stats with a paginated per-stream section: the window
// [offset, offset+limit) of streams in admission order (limit < 0 means
// the rest). PerStreamTotal carries the full count so clients can walk
// pages; the aggregate and shard sections are always complete.
func (e *Engine) StatsPage(offset, limit int) Snapshot {
	return e.statsPage(offset, limit, true)
}

func (e *Engine) statsPage(offset, limit int, includeStreams bool) Snapshot {
	snap := Snapshot{
		Tier:               e.cfg.tier().String(),
		Draining:           e.draining.Load(),
		Rotations:          e.Rotations(),
		Verdicts:           e.verdictCount.Load(),
		LostVerdicts:       e.lostCount.Load(),
		CheckpointsWritten: e.ckptOK.Load(),
		CheckpointErrors:   e.ckptErr.Load(),
		Shards:             make([]ShardSnapshot, len(e.shards)),
	}

	// One short critical section for the block-table header; everything
	// per-stream below reads initialised slab slots and atomics without
	// the lock (blocks never move, and a handle below nstreams was fully
	// initialised before nstreams was published).
	e.mu.Lock()
	blocks, nstreams, live := e.blocks, e.nstreams, e.live
	e.mu.Unlock()
	snap.Streams = nstreams
	snap.Live = live

	var counts [latHistBuckets]int64
	for i, sh := range e.shards {
		ss := &snap.Shards[i]
		ss.Streams = int(sh.liveStreams.Load())
		ss.Batches = sh.batches.Load()
		ss.Intervals = sh.intervals.Load()
		ss.ShedBatches = sh.shedBatches.Load()
		ss.ShedIntervals = sh.shedIntervals.Load()
		ss.QueueDepth = sh.q.depth()
		// Lag is only meaningful while the shard has live streams: an
		// idle shard (all its streams finished) stops seeing batches, so
		// comparing its last batch's rotation against the still-ticking
		// wheel would report ever-growing phantom lag.
		if lag := snap.Rotations - sh.lastRot.Load(); lag > 0 && ss.Batches > 0 && ss.Streams > 0 {
			ss.LagRotations = lag
		}
		if total := sh.lat.snapshot(&counts); total > 0 {
			ss.P50LatencyMicros = quantile(&counts, total, 0.50)
			ss.P99LatencyMicros = quantile(&counts, total, 0.99)
			ss.P999LatencyMicros = quantile(&counts, total, 0.999)
			for b := range counts {
				if counts[b] > 0 {
					ss.LagHistogram = append(ss.LagHistogram, LagBucket{
						UpToMicros: latBucketUpper(b),
						Count:      counts[b],
					})
				}
			}
		}
		for _, b := range sh.batchers {
			if b.Compiled() {
				ss.CompiledStages++
			}
			if b.Quantized() {
				ss.QuantizedStages++
			}
		}
		snap.ShedIntervals += ss.ShedIntervals
	}

	if includeStreams {
		snap.PerStreamTotal = nstreams
		if offset < 0 {
			offset = 0
		}
		if offset > nstreams {
			offset = nstreams
		}
		end := nstreams
		if limit >= 0 && offset+limit < end {
			end = offset + limit
		}
		snap.PerStreamOffset = offset
		snap.PerStream = make([]StreamSnapshot, 0, end-offset)
		for h := handle(offset); int(h) < end; h++ {
			s := streamAt(blocks, h)
			snap.PerStream = append(snap.PerStream, StreamSnapshot{
				ID:             s.id,
				Shard:          s.shardIdx,
				Slot:           s.slot,
				Scheduled:      int(s.rot.Load()),
				Verdicts:       s.done.Load(),
				LostVerdicts:   s.lost.Load(),
				SourceFailures: s.srcFails.Load(),
				BadFrames:      s.badFrames.Load(),
				ActiveStage:    e.stageName(s),
				Breaker:        s.br.Snapshot(),
				Finished:       s.finished.Load(),
				Removed:        s.removed.Load(),
			})
		}
	}
	return snap
}

// stageName maps a stream's last recorded active stage to its name.
func (e *Engine) stageName(s *stream) string {
	if s.done.Load() == 0 {
		return ""
	}
	idx := int(s.activeStage.Load())
	if idx < 0 || idx >= len(e.stageNames) {
		return ""
	}
	return e.stageNames[idx]
}
