package fleet

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/supervise"
)

// latRingSize is the number of recent harvest-to-verdict latencies each
// shard retains for percentile estimation. A fixed ring of atomics
// keeps recording allocation-free and race-free against concurrent
// snapshots.
const latRingSize = 2048

// latRing is a lock-free ring of recent latency samples (nanoseconds).
type latRing struct {
	n   atomic.Int64
	buf [latRingSize]atomic.Int64
}

// record stores one latency sample.
func (r *latRing) record(d time.Duration) {
	i := r.n.Add(1) - 1
	r.buf[i%latRingSize].Store(int64(d))
}

// percentiles returns the p50 and p99 of the retained samples, in
// microseconds (0, 0 with no samples yet). Control-plane only: it
// copies and sorts.
func (r *latRing) percentiles() (p50, p99 float64) {
	n := r.n.Load()
	if n > latRingSize {
		n = latRingSize
	}
	if n == 0 {
		return 0, 0
	}
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = r.buf[i].Load()
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	pick := func(p float64) float64 {
		idx := int(p * float64(len(samples)-1))
		return float64(samples[idx]) / 1e3
	}
	return pick(0.50), pick(0.99)
}

// StreamSnapshot is the externally visible state of one monitored
// stream.
type StreamSnapshot struct {
	ID    string
	Shard int
	Slot  int
	// Scheduled is how many intervals the wheel has harvested for the
	// stream; Verdicts how many the shard has emitted (Scheduled -
	// Verdicts is the stream's in-flight/shed backlog).
	Scheduled int
	Verdicts  int64
	// LostVerdicts were emitted by the chain's hold-last path (dropped
	// samples, open breaker, failed reads, shed batches).
	LostVerdicts   int64
	SourceFailures int64
	BadFrames      int64
	// ActiveStage names the fallback-chain stage that scored the most
	// recent verdict ("" before the first one).
	ActiveStage string
	Breaker     supervise.BreakerSnapshot
	Finished    bool
	Removed     bool
}

// ShardSnapshot is the health of one worker shard.
type ShardSnapshot struct {
	// Streams currently assigned (live, not yet pruned).
	Streams int
	// Batches processed and intervals (verdicts) emitted.
	Batches   int64
	Intervals int64
	// ShedBatches/ShedIntervals count work discarded by drop-oldest
	// backpressure on the shard's queue.
	ShedBatches   int64
	ShedIntervals int64
	// QueueDepth is the current batch backlog; LagRotations how many
	// wheel rotations the shard trails the harvester by.
	QueueDepth   int
	LagRotations int64
	// CompiledStages is how many of the shard's per-stage batchers score
	// through a lowered fast path — compiled or quantized (0 with
	// Config.Interpreted or when no stage model lowers).
	CompiledStages int
	// QuantizedStages is how many of those score through the quantized
	// fixed-point kernels specifically (0 unless Config.Tier is
	// core.TierQuantized; stages without a quantized lowering fall back
	// to compiled and count only in CompiledStages).
	QuantizedStages int
	// P50/P99 harvest-to-verdict latency over the recent window,
	// microseconds.
	P50LatencyMicros float64
	P99LatencyMicros float64
}

// Snapshot is a point-in-time view of the whole fleet — what
// hmd-serve's /stats endpoint returns in fleet mode.
type Snapshot struct {
	// Tier is the configured inference tier ("compiled", "quantized",
	// "interpreted") — what operators check to confirm which lowering a
	// fleet actually runs.
	Tier string
	// Streams ever added; Live of those still being scheduled.
	Streams int
	Live    int
	// Draining reports that Drain was called: the engine is finishing
	// existing streams and admitting no new ones.
	Draining bool
	// Rotations the wheel has completed (each rotation harvests every
	// live stream once).
	Rotations int64
	Verdicts  int64
	// LostVerdicts across all streams (see StreamSnapshot).
	LostVerdicts int64
	// ShedIntervals across all shards.
	ShedIntervals      int64
	CheckpointsWritten int64
	CheckpointErrors   int64
	Shards             []ShardSnapshot
	// PerStream is populated only when requested (Stats(true)); at
	// fleet scale the aggregate is the cheap default.
	PerStream []StreamSnapshot `json:",omitempty"`
}

// Stats returns a point-in-time snapshot of the fleet. Safe to call
// concurrently with Run. includeStreams adds the per-stream breakdown,
// which is O(streams) to build.
func (e *Engine) Stats(includeStreams bool) Snapshot {
	snap := Snapshot{
		Tier:               e.cfg.tier().String(),
		Draining:           e.draining.Load(),
		Rotations:          e.Rotations(),
		Verdicts:           e.verdictCount.Load(),
		LostVerdicts:       e.lostCount.Load(),
		CheckpointsWritten: e.ckptOK.Load(),
		CheckpointErrors:   e.ckptErr.Load(),
		Shards:             make([]ShardSnapshot, len(e.shards)),
	}
	perShard := make([]int, len(e.shards))

	e.mu.Lock()
	snap.Streams = len(e.all)
	snap.Live = e.live
	var streams []*stream
	if includeStreams {
		streams = append(streams, e.all...)
	}
	for _, s := range e.all {
		if !s.pruned {
			perShard[s.shardIdx]++
		}
	}
	scheduled := make(map[*stream]int, len(streams))
	for _, s := range streams {
		scheduled[s] = s.rot
	}
	e.mu.Unlock()

	for i, sh := range e.shards {
		ss := &snap.Shards[i]
		ss.Streams = perShard[i]
		ss.Batches = sh.batches.Load()
		ss.Intervals = sh.intervals.Load()
		ss.ShedBatches = sh.shedBatches.Load()
		ss.ShedIntervals = sh.shedIntervals.Load()
		ss.QueueDepth = sh.q.depth()
		// Lag is only meaningful while the shard has live streams: an
		// idle shard (all its streams finished) stops seeing batches, so
		// comparing its last batch's rotation against the still-ticking
		// wheel would report ever-growing phantom lag.
		if lag := snap.Rotations - sh.lastRot.Load(); lag > 0 && ss.Batches > 0 && ss.Streams > 0 {
			ss.LagRotations = lag
		}
		ss.P50LatencyMicros, ss.P99LatencyMicros = sh.lat.percentiles()
		for _, b := range sh.batchers {
			if b.Compiled() {
				ss.CompiledStages++
			}
			if b.Quantized() {
				ss.QuantizedStages++
			}
		}
		snap.ShedIntervals += ss.ShedIntervals
	}

	if includeStreams {
		snap.PerStream = make([]StreamSnapshot, 0, len(streams))
		for _, s := range streams {
			snap.PerStream = append(snap.PerStream, StreamSnapshot{
				ID:             s.id,
				Shard:          s.shardIdx,
				Slot:           s.slot,
				Scheduled:      scheduled[s],
				Verdicts:       s.done.Load(),
				LostVerdicts:   s.lost.Load(),
				SourceFailures: s.srcFails.Load(),
				BadFrames:      s.badFrames.Load(),
				ActiveStage:    e.stageName(s),
				Breaker:        s.br.Snapshot(),
				Finished:       s.finished.Load(),
				Removed:        s.removed.Load(),
			})
		}
	}
	return snap
}

// stageName maps a stream's last recorded active stage to its name.
func (e *Engine) stageName(s *stream) string {
	if s.done.Load() == 0 {
		return ""
	}
	idx := int(s.activeStage.Load())
	if idx < 0 || idx >= len(e.stageNames) {
		return ""
	}
	return e.stageNames[idx]
}
