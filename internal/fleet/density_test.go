package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/source"
	"repro/internal/supervise"
)

// TestRingZeroAlloc gates the wheel→shard hand-off itself at zero heap
// allocations: stage/publish/claim/consume cycles reuse the ring's
// resident batches, and a DropOldest shed cycle reuses the shed slot
// without allocating either.
func TestRingZeroAlloc(t *testing.T) {
	ctx := context.Background()

	q := newSPSCRing(4, supervise.Block)
	cycle := func() {
		rb, shed, err := q.stage(ctx)
		if err != nil || shed != nil {
			t.Fatalf("stage: batch=%v shed=%v err=%v", rb, shed, err)
		}
		rb.entries = rb.entries[:0]
		q.publish()
		b, ok := q.tryGet()
		if !ok {
			t.Fatal("published batch not claimable")
		}
		_ = b
		q.consumed()
	}
	cycle() // warm
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("ring stage/publish/get/consume allocates %.2f, want 0", allocs)
	}

	// DropOldest at logical capacity: every stage sheds the oldest
	// published batch, and the consumer's claim skips the shed slot.
	// The whole overloaded steady state — shed, publish, skip, claim,
	// consume — must recycle slots allocation-free too.
	qd := newSPSCRing(2, supervise.DropOldest)
	for i := 0; i < 2; i++ {
		if _, _, err := qd.stage(ctx); err != nil {
			t.Fatal(err)
		}
		qd.publish()
	}
	shedCycle := func() {
		rb, shed, err := qd.stage(ctx)
		if err != nil {
			t.Fatalf("stage under shed: %v", err)
		}
		if shed == nil {
			t.Fatal("full DropOldest ring did not shed")
		}
		rb.entries = rb.entries[:0]
		qd.publish()
		// The slow consumer claims one batch, hopping over the slot
		// just shed; without it, head never advances and the producer
		// hits the ring's bounded physical backpressure.
		if _, ok := qd.tryGet(); !ok {
			t.Fatal("no claimable batch in overloaded ring")
		}
		qd.consumed()
		// Refill to logical capacity so the next cycle sheds again.
		rb, shed, err = qd.stage(ctx)
		if err != nil || shed != nil {
			t.Fatalf("refill stage: shed=%v err=%v", shed, err)
		}
		rb.entries = rb.entries[:0]
		qd.publish()
	}
	shedCycle() // warm
	if allocs := testing.AllocsPerRun(200, shedCycle); allocs != 0 {
		t.Fatalf("ring shed cycle allocates %.2f, want 0", allocs)
	}
}

// TestFleetDensityChurn is the high-stream-count churn workout (run
// under -race by scripts/check.sh): thousands of bounded streams
// running to their horizon while extra unbounded streams are added and
// removed concurrently and paginated stats readers walk the per-stream
// table. The engine must drain cleanly, every bounded verdict must be
// emitted losslessly, and pagination must tile the stream list exactly.
func TestFleetDensityChurn(t *testing.T) {
	const (
		bounded   = 2048
		churn     = 128
		intervals = 20
	)
	e := newTestEngine(t, Config{
		NewChain:   stubChainFactory(),
		Shards:     4,
		WheelSlots: 32,
		Policy:     supervise.Block,
	})
	for i := 0; i < bounded; i++ {
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("d%04d", i),
			Source:    source.NewSynthetic(uint64(i)+1, 4),
			Intervals: intervals,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// An unbounded anchor keeps the engine from draining before the
	// churners finish; it is removed once they do.
	if err := e.Add(StreamConfig{ID: "anchor", Source: source.NewSynthetic(9999, 4)}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- e.Run(ctx) }()

	var churnWG sync.WaitGroup
	var added atomic.Int64
	// Churners: add unbounded streams mid-run, then remove them.
	for g := 0; g < 4; g++ {
		churnWG.Add(1)
		go func(g int) {
			defer churnWG.Done()
			for k := 0; k < churn/4; k++ {
				id := fmt.Sprintf("churn%d-%d", g, k)
				if err := e.Add(StreamConfig{
					ID:     id,
					Source: source.NewSynthetic(uint64(g*1000+k)+1, 4),
				}); err != nil {
					t.Error(err)
					return
				}
				added.Add(1)
				if err := e.Remove(id); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	// A paginated stats reader riding along.
	stopStats := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for {
			select {
			case <-stopStats:
				return
			default:
			}
			var seen int
			for off := 0; ; off += 256 {
				page := e.StatsPage(off, 256)
				seen += len(page.PerStream)
				if page.PerStreamOffset != off && len(page.PerStream) > 0 {
					t.Errorf("page offset %d reported as %d", off, page.PerStreamOffset)
					return
				}
				if off+256 >= page.PerStreamTotal {
					// Streams may be added between pages, so a walk can
					// undercount against the final total — never over.
					if seen > page.PerStreamTotal {
						t.Errorf("pages yielded %d streams, total %d", seen, page.PerStreamTotal)
						return
					}
					break
				}
			}
		}
	}()

	churnWG.Wait()
	close(stopStats)
	statsWG.Wait()
	if err := e.Remove("anchor"); err != nil {
		t.Fatal(err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := e.Stats(false)
	if snap.Streams != bounded+1+int(added.Load()) {
		t.Fatalf("Streams = %d, want %d", snap.Streams, bounded+1+int(added.Load()))
	}
	if snap.Live != 0 {
		t.Fatalf("Live = %d after drain, want 0", snap.Live)
	}
	if snap.Verdicts < int64(bounded*intervals) {
		t.Fatalf("Verdicts = %d, want >= %d", snap.Verdicts, bounded*intervals)
	}
	// Every bounded stream ran losslessly to its horizon under Block.
	full := e.Stats(true)
	if len(full.PerStream) != snap.Streams {
		t.Fatalf("Stats(true) returned %d streams, want %d", len(full.PerStream), snap.Streams)
	}
	for _, ss := range full.PerStream {
		if ss.Removed {
			continue
		}
		if ss.Verdicts != intervals || ss.LostVerdicts != 0 {
			t.Fatalf("stream %s: %d verdicts (%d lost), want %d lossless",
				ss.ID, ss.Verdicts, ss.LostVerdicts, intervals)
		}
	}

	// Pagination tiles the final stream list exactly, in admission
	// order, with no stream repeated or skipped.
	seen := make(map[string]bool, snap.Streams)
	order := 0
	for off := 0; off < snap.Streams; off += 300 {
		page := e.StatsPage(off, 300)
		if page.PerStreamTotal != snap.Streams {
			t.Fatalf("PerStreamTotal = %d, want %d", page.PerStreamTotal, snap.Streams)
		}
		for _, ss := range page.PerStream {
			if seen[ss.ID] {
				t.Fatalf("stream %s appears in two pages", ss.ID)
			}
			seen[ss.ID] = true
			order++
		}
	}
	if order != snap.Streams {
		t.Fatalf("pages covered %d streams, want %d", order, snap.Streams)
	}
}
