package fleet

import (
	"context"
	"errors"
	"sync"

	"repro/internal/supervise"
)

// errQueueClosed reports a put against a closed queue: a shutdown race
// the caller must treat like cancellation (recycle the batch, abort any
// checkpoint marker riding it).
var errQueueClosed = errors.New("fleet: shard queue closed")

// batchQueue is the bounded hand-off between the timer wheel and one
// shard worker: a fixed ring of *batch with the same two overflow
// policies as the pipeline's stage queues. Block applies backpressure
// (the wheel waits, nothing is lost, verdicts stay deterministic);
// DropOldest sheds the oldest *sheddable* batch to admit the new one —
// drain and checkpoint-marker batches are never shed, since each exists
// precisely to survive shedding. The ring never reallocates, so
// put/get are allocation-free.
type batchQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []*batch // fixed ring
	head   int
	n      int
	policy supervise.OverflowPolicy
	closed bool
}

func newBatchQueue(capacity int, policy supervise.OverflowPolicy) *batchQueue {
	if capacity <= 0 {
		capacity = 1
	}
	q := &batchQueue{buf: make([]*batch, capacity), policy: policy}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// sheddable reports whether DropOldest may discard this batch.
func (b *batch) sheddable() bool { return !b.drain && b.ckpt == nil }

// put enqueues b, applying the overflow policy when full. Under
// DropOldest it returns the batch it shed (nil if none) so the caller
// can account for and recycle it; a full ring holding only unsheddable
// batches blocks even under DropOldest. It returns ctx.Err() if the
// context is cancelled while blocked (or on entry) and errQueueClosed
// if the queue was closed; either way b was not enqueued and is the
// caller's to recycle.
func (q *batchQueue) put(ctx context.Context, b *batch) (shed *batch, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n >= len(q.buf) && !q.closed && ctx.Err() == nil {
		if q.policy == supervise.DropOldest {
			if shed = q.removeOldestSheddable(); shed != nil {
				break
			}
		}
		q.cond.Wait()
	}
	if cerr := ctx.Err(); cerr != nil {
		return shed, cerr
	}
	if q.closed {
		// The wheel closes the queue itself after its loop, so a put
		// here is a shutdown race; the sentinel hands b back to the
		// caller, which would otherwise leak it — and, for a checkpoint
		// marker, leave its collector waiting forever.
		return shed, errQueueClosed
	}
	q.buf[(q.head+q.n)%len(q.buf)] = b
	q.n++
	q.cond.Broadcast()
	return shed, nil
}

// removeOldestSheddable pops the oldest batch DropOldest may discard,
// compacting the ring. Returns nil when every queued batch is a drain
// or checkpoint marker.
func (q *batchQueue) removeOldestSheddable() *batch {
	for k := 0; k < q.n; k++ {
		idx := (q.head + k) % len(q.buf)
		if !q.buf[idx].sheddable() {
			continue
		}
		victim := q.buf[idx]
		for j := k; j < q.n-1; j++ {
			q.buf[(q.head+j)%len(q.buf)] = q.buf[(q.head+j+1)%len(q.buf)]
		}
		q.n--
		q.buf[(q.head+q.n)%len(q.buf)] = nil
		return victim
	}
	return nil
}

// get dequeues the next batch, blocking until one is available. ok is
// false when the queue is closed and drained, or ctx is cancelled.
func (q *batchQueue) get(ctx context.Context) (b *batch, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	if ctx.Err() != nil || q.n == 0 {
		return nil, false
	}
	return q.pop(), true
}

// tryGet dequeues without blocking; used by the shard's shutdown drain
// and by white-box tests stepping the engine synchronously.
func (q *batchQueue) tryGet() (b *batch, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil, false
	}
	return q.pop(), true
}

func (q *batchQueue) pop() *batch {
	b := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.cond.Broadcast()
	return b
}

// close marks the producer side finished; blocked consumers drain the
// remaining batches and then receive ok=false.
func (q *batchQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// wake releases blocked producers and consumers so they can observe
// context cancellation.
func (q *batchQueue) wake() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *batchQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
