package fleet

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/supervise"
)

// errQueueClosed reports a stage/publish against a closed ring: a
// shutdown race the caller must treat like cancellation (abort any
// checkpoint marker it was about to ride on the batch).
var errQueueClosed = errors.New("fleet: shard queue closed")

// Ring-slot states. A slot's resident batch is owned by exactly one
// side at a time, and the state word is the ownership token:
//
//	slotFree  — producer's (unpublished), or consumer's (claimed via
//	            CAS ready→free; protected from producer reuse because
//	            head does not advance until consumed()).
//	slotReady — published; first CAS wins it (consumer claims it, or
//	            the producer sheds it under DropOldest).
//	slotShed  — shed by the producer; the consumer skips it.
const (
	slotFree int32 = iota
	slotReady
	slotShed
)

// ringSlot is one ring position with its resident, perpetually reused
// batch.
type ringSlot struct {
	state atomic.Int32
	b     *batch
}

// spscRing is the wheel→shard hand-off: a fixed single-producer/
// single-consumer ring of resident batches. The wheel (sole producer)
// stages the slot at tail, fills it in place (entry slices are swapped,
// never copied), and publishes; the shard (sole consumer) claims the
// slot at head, processes, and releases it. No mutex, no condition
// variable, no free-list hop: the hot path is a handful of atomic
// operations, and steady state allocates nothing.
//
// Backpressure mirrors the old batchQueue policies. Block caps the
// number of published-unclaimed batches at the logical capacity and
// makes the producer wait. DropOldest sheds instead: the producer CASes
// the oldest sheddable ready slot to slotShed (drain and checkpoint
// batches never shed) and keeps going. A shed slot stays physically
// occupied until the consumer's head passes it, so the ring's physical
// size is 2×capacity+2 — room for the claimed batch in flight plus a
// capacity's worth of shed markers; if the consumer stalls inside one
// batch long enough for shed slots to exhaust that slack, the producer
// waits — bounded backpressure even while shedding.
//
// Wakeups ride two one-slot channels instead of a cond var: the waker
// does a non-blocking send, the waiter re-checks its condition in a
// loop, and context cancellation joins the same select.
type spscRing struct {
	slots []ringSlot
	cap   int // logical capacity (max published-unclaimed batches)

	head   atomic.Int64 // consumer position: next slot to release
	tail   atomic.Int64 // producer position: next slot to stage
	ready  atomic.Int64 // published, unclaimed, unshed batches
	closed atomic.Bool

	prodWake chan struct{} // consumer → producer: space freed
	consWake chan struct{} // producer → consumer: work published

	policy supervise.OverflowPolicy
}

func newSPSCRing(capacity int, policy supervise.OverflowPolicy) *spscRing {
	if capacity <= 0 {
		capacity = 1
	}
	q := &spscRing{
		slots:    make([]ringSlot, 2*capacity+2),
		cap:      capacity,
		prodWake: make(chan struct{}, 1),
		consWake: make(chan struct{}, 1),
		policy:   policy,
	}
	for i := range q.slots {
		q.slots[i].b = &batch{}
	}
	return q
}

// sheddable reports whether DropOldest may discard this batch.
func (b *batch) sheddable() bool { return !b.drain && b.ckpt == nil }

func wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// stage reserves the next slot and returns its resident batch for the
// producer to fill in place; publish hands it to the consumer. Under
// DropOldest a logically full ring sheds the oldest sheddable batch and
// returns it alongside (still intact — the caller accounts for its
// entries before the slot is ever restaged). It returns ctx.Err() if
// cancelled while waiting and errQueueClosed after close; either way no
// slot was reserved.
func (q *spscRing) stage(ctx context.Context) (rb, shed *batch, err error) {
	for {
		t := q.tail.Load()
		if t-q.head.Load() < int64(len(q.slots)) { // physical space
			if q.ready.Load() < int64(q.cap) {
				break
			}
			if q.policy == supervise.DropOldest {
				if shed = q.shedOldest(); shed != nil {
					break
				}
				// Every published batch is a drain or checkpoint
				// marker: wait like Block.
			}
		}
		if q.closed.Load() {
			return nil, shed, errQueueClosed
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, shed, cerr
		}
		select {
		case <-q.prodWake:
		case <-ctx.Done():
		}
	}
	if q.closed.Load() {
		return nil, shed, errQueueClosed
	}
	return q.slots[q.tail.Load()%int64(len(q.slots))].b, shed, nil
}

// publish hands the staged slot to the consumer. Only valid after a
// successful stage.
func (q *spscRing) publish() {
	t := q.tail.Load()
	q.slots[t%int64(len(q.slots))].state.Store(slotReady)
	q.ready.Add(1)
	q.tail.Store(t + 1)
	wake(q.consWake)
}

// shedOldest CASes the oldest sheddable ready slot to slotShed and
// returns its batch (nil when every published batch is unsheddable).
// After the CAS the consumer will skip the slot, so reading the batch's
// entries is race-free until the producer restages it a full lap later.
func (q *spscRing) shedOldest() *batch {
	n := int64(len(q.slots))
	t := q.tail.Load()
	for k := q.head.Load(); k < t; k++ {
		sl := &q.slots[k%n]
		if sl.state.Load() != slotReady || !sl.b.sheddable() {
			continue
		}
		if sl.state.CompareAndSwap(slotReady, slotShed) {
			q.ready.Add(-1)
			return sl.b
		}
	}
	return nil
}

// get claims the next published batch, blocking until one is available.
// ok is false when the ring is closed and drained, or ctx is cancelled.
// The consumer must call consumed exactly once per claimed batch.
func (q *spscRing) get(ctx context.Context) (b *batch, ok bool) {
	for {
		if ctx.Err() != nil {
			return nil, false
		}
		if b, ok := q.tryGet(); ok {
			return b, true
		}
		if q.closed.Load() && q.head.Load() == q.tail.Load() {
			return nil, false
		}
		select {
		case <-q.consWake:
		case <-ctx.Done():
		}
	}
}

// tryGet claims without blocking; the shard's shutdown drain and the
// white-box tests stepping the engine synchronously use it.
func (q *spscRing) tryGet() (b *batch, ok bool) {
	n := int64(len(q.slots))
	for {
		h := q.head.Load()
		if h == q.tail.Load() {
			return nil, false
		}
		sl := &q.slots[h%n]
		switch sl.state.Load() {
		case slotReady:
			if sl.state.CompareAndSwap(slotReady, slotFree) {
				q.ready.Add(-1)
				wake(q.prodWake) // logical space freed
				return sl.b, true
			}
			// Lost the CAS to a concurrent shed; re-examine the slot.
		case slotShed:
			sl.state.Store(slotFree)
			q.head.Store(h + 1)
			wake(q.prodWake)
		default:
			// Published but state not yet visible? Cannot happen: tail
			// advances only after the state store. A free slot at head
			// means a claimed batch is still in flight — the caller
			// (the single consumer) would have to have claimed it, so
			// tryGet is being misused; report empty.
			return nil, false
		}
	}
}

// consumed releases the claimed slot at head, letting the producer
// restage it after a full lap.
func (q *spscRing) consumed() {
	q.head.Add(1)
	wake(q.prodWake)
}

// close marks the producer side finished; the consumer drains the
// remaining batches and then sees ok=false.
func (q *spscRing) close() {
	q.closed.Store(true)
	q.wakeAll()
}

// wakeAll releases both sides so they can observe cancellation.
func (q *spscRing) wakeAll() {
	wake(q.prodWake)
	wake(q.consWake)
}

func (q *spscRing) depth() int { return int(q.ready.Load()) }
