package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
	"repro/internal/workload"
)

var (
	trainedChainOnce sync.Once
	trainedChain     *core.FallbackChain
	trainedChainErr  error
)

// trainedTestChain trains one real (compilable) REPTree fallback chain
// for the compiled-path fleet tests. The stub chains used elsewhere in
// this package never compile — their fixed-score models are not in the
// compiler's type switch — so exercising the compiled engine needs a
// trained template.
func trainedTestChain(t *testing.T) *core.FallbackChain {
	t.Helper()
	trainedChainOnce.Do(func() {
		cfg := collect.Small()
		cfg.Suite.AppsPerFamily = 4
		cfg.Intervals = 10
		res, err := collect.Collect(cfg)
		if err != nil {
			trainedChainErr = err
			return
		}
		b, err := core.NewBuilder(res.Data, 0.7, 1)
		if err != nil {
			trainedChainErr = err
			return
		}
		trainedChain, trainedChainErr = b.BuildChain("REPTree", zoo.General,
			[]int{4, 2}, core.ChainConfig{Window: 3, BadAfter: 3})
	})
	if trainedChainErr != nil {
		t.Fatal(trainedChainErr)
	}
	return trainedChain
}

// TestFleetCompiledMatchesInterpreted is the golden test for the
// compiled fast path at fleet scale: the same fault-injected stream
// population, run once through the default (compiled) engine and once
// with Config.Interpreted pinning every shard batcher to the
// interpreted model, must produce bit-identical verdict streams —
// through dropped samples, breaker trips and chain stepdowns.
func TestFleetCompiledMatchesInterpreted(t *testing.T) {
	const n = 50
	const streams = 6
	tmpl := trainedTestChain(t)
	plan := &faults.Plan{Seed: 0xC0FFEE, Rate: 0.3}
	brCfg := supervise.BreakerConfig{FailAfter: 2, Cooldown: 3}
	apps := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 2})

	srcCfg := func(i int) supervise.MachineSourceConfig {
		app := apps[i%len(apps)]
		return supervise.MachineSourceConfig{
			Machine:     micro.FastConfig(),
			Run:         app.NewRun(0),
			Events:      tmpl.Events(),
			Total:       n,
			CycleBudget: 4000,
			Plan:        plan,
			Scope:       fmt.Sprintf("%s/stream%d", app.Name, i),
		}
	}

	run := func(interpreted bool) [][]core.Verdict {
		// Not newTestEngine: that helper installs the stub-chain factory
		// when NewChain is nil, and this test needs the trained template.
		e, err := New(Config{
			Chain:       tmpl,
			Shards:      3,
			WheelSlots:  4,
			Policy:      supervise.Block,
			Breaker:     brCfg,
			Interpreted: interpreted,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*collector, streams)
		for i := 0; i < streams; i++ {
			src, err := supervise.NewMachineSource(srcCfg(i))
			if err != nil {
				t.Fatal(err)
			}
			got[i] = &collector{}
			if err := e.Add(StreamConfig{
				ID:        fmt.Sprintf("s%d", i),
				Source:    src,
				Intervals: n,
				OnVerdict: got[i].add,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		snap := e.Stats(false)
		for si, sh := range snap.Shards {
			want := tmpl.Stages()
			if interpreted {
				want = 0
			}
			if sh.CompiledStages != want {
				t.Fatalf("interpreted=%v shard %d: CompiledStages = %d, want %d",
					interpreted, si, sh.CompiledStages, want)
			}
		}
		out := make([][]core.Verdict, streams)
		for i := range got {
			requireGapFree(t, fmt.Sprintf("s%d", i), got[i].verdicts, n, 0)
			out[i] = got[i].verdicts
		}
		return out
	}

	compiledV := run(false)
	interpretedV := run(true)
	for i := 0; i < streams; i++ {
		for k := 0; k < n; k++ {
			c, iv := compiledV[i][k], interpretedV[i][k]
			if c.Interval != iv.Interval || c.Malware != iv.Malware ||
				math.Float64bits(c.Score) != math.Float64bits(iv.Score) {
				t.Fatalf("stream s%d verdict %d: compiled %+v != interpreted %+v", i, k, c, iv)
			}
		}
	}
}

// TestFleetQuantizedObservability pins the operator-facing tier
// telemetry: a fleet running Config.Tier = core.TierQuantized must say
// so in its snapshot (engine Tier plus per-shard QuantizedStages for
// every stage of the all-tree chain, which quantizes fully), and the
// default engine must report zero quantized stages — so /stats can
// always answer "which lowering is actually serving".
func TestFleetQuantizedObservability(t *testing.T) {
	const n = 12
	const streams = 4
	tmpl := trainedTestChain(t)

	run := func(tier core.Tier) Snapshot {
		e, err := New(Config{
			Chain:  tmpl,
			Shards: 2,
			Policy: supervise.Block,
			Tier:   tier,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streams; i++ {
			src, err := supervise.NewMachineSource(supervise.MachineSourceConfig{
				Machine:     micro.FastConfig(),
				Run:         workload.Suite(workload.SuiteConfig{Seed: 7, AppsPerFamily: 1})[0].NewRun(0),
				Events:      tmpl.Events(),
				Total:       n,
				CycleBudget: 4000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Add(StreamConfig{
				ID:        fmt.Sprintf("s%d", i),
				Source:    src,
				Intervals: n,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return e.Stats(false)
	}

	qsnap := run(core.TierQuantized)
	if qsnap.Tier != core.TierQuantized.String() {
		t.Fatalf("quantized fleet snapshot Tier = %q, want %q", qsnap.Tier, core.TierQuantized.String())
	}
	for i, sh := range qsnap.Shards {
		if sh.QuantizedStages != tmpl.Stages() {
			t.Errorf("shard %d: QuantizedStages = %d, want %d (all-tree chain quantizes fully)",
				i, sh.QuantizedStages, tmpl.Stages())
		}
		if sh.CompiledStages != tmpl.Stages() {
			t.Errorf("shard %d: CompiledStages = %d, want %d (quantized stages count as lowered)",
				i, sh.CompiledStages, tmpl.Stages())
		}
	}

	csnap := run(core.TierCompiled)
	if csnap.Tier != core.TierCompiled.String() {
		t.Fatalf("default fleet snapshot Tier = %q, want %q", csnap.Tier, core.TierCompiled.String())
	}
	for i, sh := range csnap.Shards {
		if sh.QuantizedStages != 0 {
			t.Errorf("shard %d: QuantizedStages = %d on the compiled tier, want 0", i, sh.QuantizedStages)
		}
	}
}
