package fleet

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
	"repro/internal/workload"
)

var (
	trainedChainOnce sync.Once
	trainedChain     *core.FallbackChain
	trainedChainErr  error
)

// trainedTestChain trains one real (compilable) REPTree fallback chain
// for the compiled-path fleet tests. The stub chains used elsewhere in
// this package never compile — their fixed-score models are not in the
// compiler's type switch — so exercising the compiled engine needs a
// trained template.
func trainedTestChain(t *testing.T) *core.FallbackChain {
	t.Helper()
	trainedChainOnce.Do(func() {
		cfg := collect.Small()
		cfg.Suite.AppsPerFamily = 4
		cfg.Intervals = 10
		res, err := collect.Collect(cfg)
		if err != nil {
			trainedChainErr = err
			return
		}
		b, err := core.NewBuilder(res.Data, 0.7, 1)
		if err != nil {
			trainedChainErr = err
			return
		}
		trainedChain, trainedChainErr = b.BuildChain("REPTree", zoo.General,
			[]int{4, 2}, core.ChainConfig{Window: 3, BadAfter: 3})
	})
	if trainedChainErr != nil {
		t.Fatal(trainedChainErr)
	}
	return trainedChain
}

// TestFleetCompiledMatchesInterpreted is the golden test for the
// compiled fast path at fleet scale: the same fault-injected stream
// population, run once through the default (compiled) engine and once
// with Config.Interpreted pinning every shard batcher to the
// interpreted model, must produce bit-identical verdict streams —
// through dropped samples, breaker trips and chain stepdowns.
func TestFleetCompiledMatchesInterpreted(t *testing.T) {
	const n = 50
	const streams = 6
	tmpl := trainedTestChain(t)
	plan := &faults.Plan{Seed: 0xC0FFEE, Rate: 0.3}
	brCfg := supervise.BreakerConfig{FailAfter: 2, Cooldown: 3}
	apps := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 2})

	srcCfg := func(i int) supervise.MachineSourceConfig {
		app := apps[i%len(apps)]
		return supervise.MachineSourceConfig{
			Machine:     micro.FastConfig(),
			Run:         app.NewRun(0),
			Events:      tmpl.Events(),
			Total:       n,
			CycleBudget: 4000,
			Plan:        plan,
			Scope:       fmt.Sprintf("%s/stream%d", app.Name, i),
		}
	}

	run := func(interpreted bool) [][]core.Verdict {
		// Not newTestEngine: that helper installs the stub-chain factory
		// when NewChain is nil, and this test needs the trained template.
		e, err := New(Config{
			Chain:       tmpl,
			Shards:      3,
			WheelSlots:  4,
			Policy:      supervise.Block,
			Breaker:     brCfg,
			Interpreted: interpreted,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*collector, streams)
		for i := 0; i < streams; i++ {
			src, err := supervise.NewMachineSource(srcCfg(i))
			if err != nil {
				t.Fatal(err)
			}
			got[i] = &collector{}
			if err := e.Add(StreamConfig{
				ID:        fmt.Sprintf("s%d", i),
				Source:    src,
				Intervals: n,
				OnVerdict: got[i].add,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		snap := e.Stats(false)
		for si, sh := range snap.Shards {
			want := tmpl.Stages()
			if interpreted {
				want = 0
			}
			if sh.CompiledStages != want {
				t.Fatalf("interpreted=%v shard %d: CompiledStages = %d, want %d",
					interpreted, si, sh.CompiledStages, want)
			}
		}
		out := make([][]core.Verdict, streams)
		for i := range got {
			requireGapFree(t, fmt.Sprintf("s%d", i), got[i].verdicts, n, 0)
			out[i] = got[i].verdicts
		}
		return out
	}

	compiledV := run(false)
	interpretedV := run(true)
	for i := 0; i < streams; i++ {
		for k := 0; k < n; k++ {
			c, iv := compiledV[i][k], interpretedV[i][k]
			if c.Interval != iv.Interval || c.Malware != iv.Malware ||
				math.Float64bits(c.Score) != math.Float64bits(iv.Score) {
				t.Fatalf("stream s%d verdict %d: compiled %+v != interpreted %+v", i, k, c, iv)
			}
		}
	}
}
