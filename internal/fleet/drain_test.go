package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/source"
	"repro/internal/supervise"
)

// queuedTestSource is a minimal push-fed source implementing
// source.Queued — the shape the ingest plane feeds the engine with.
type queuedTestSource struct {
	mu     sync.Mutex
	buf    [][]uint64
	closed atomic.Bool
	pend   atomic.Int64
}

func (q *queuedTestSource) push(vals []uint64) {
	q.mu.Lock()
	q.buf = append(q.buf, vals)
	q.pend.Store(int64(len(q.buf)))
	q.mu.Unlock()
}

func (q *queuedTestSource) Read(ctx context.Context, interval int) ([]uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil, source.ErrSampleLost
	}
	vals := q.buf[0]
	q.buf = q.buf[1:]
	q.pend.Store(int64(len(q.buf)))
	return vals, nil
}

func (q *queuedTestSource) Pending() int { return int(q.pend.Load()) }
func (q *queuedTestSource) Closed() bool { return q.closed.Load() }

// TestDrainFinishesUnboundedStreams: Drain must land a running fleet of
// unbounded pull streams — each finishes at its next rotation boundary
// once in-flight harvests have emitted — and Run must return nil (the
// graceful exit), with Add refusing new streams via ErrDraining.
func TestDrainFinishesUnboundedStreams(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, WheelSlots: 4, Policy: supervise.Block})
	finished := make([]atomic.Bool, 3)
	for i := 0; i < 3; i++ {
		fin := &finished[i]
		if err := e.Add(StreamConfig{
			ID:       fmt.Sprintf("s%d", i),
			Source:   source.NewSynthetic(uint64(i+1), 4),
			OnFinish: func() { fin.Store(true) },
		}); err != nil {
			t.Fatal(err)
		}
	}
	run := make(chan error, 1)
	go func() { run <- e.Run(context.Background()) }()

	waitUntil(t, "verdicts flowing", func() bool { return e.Stats(false).Verdicts > 20 })
	e.Drain()
	if !e.Draining() || !e.Stats(false).Draining {
		t.Fatal("drain flag not visible")
	}
	err := e.Add(StreamConfig{ID: "late", Source: source.NewSynthetic(9, 4)})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("Add during drain: %v", err)
	}

	select {
	case rerr := <-run:
		if rerr != nil {
			t.Fatalf("drained Run returned %v", rerr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Drain")
	}
	for i := range finished {
		if !finished[i].Load() {
			t.Fatalf("stream s%d never finished", i)
		}
	}
	// Unbounded streams stop at a rotation boundary: every harvested
	// interval got its verdict, none were abandoned.
	snap := e.Stats(true)
	for _, ss := range snap.PerStream {
		if int64(ss.Scheduled) != ss.Verdicts {
			t.Fatalf("stream %s: %d scheduled vs %d verdicts", ss.ID, ss.Scheduled, ss.Verdicts)
		}
	}
}

// TestDrainQueuedStreams: a push-fed stream under drain finishes once
// its buffered samples are scored — nothing buffered is abandoned, and
// nothing is fabricated after the buffer empties.
func TestDrainQueuedStreams(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, WheelSlots: 4, Interval: time.Millisecond, Policy: supervise.Block})
	const streams, samples = 3, 5
	srcs := make([]*queuedTestSource, streams)
	got := make([]*collector, streams)
	for i := range srcs {
		srcs[i] = &queuedTestSource{}
		got[i] = &collector{}
		if err := e.Add(StreamConfig{
			ID:        fmt.Sprintf("q%d", i),
			Source:    srcs[i],
			OnVerdict: got[i].add,
		}); err != nil {
			t.Fatal(err)
		}
	}
	run := make(chan error, 1)
	go func() { run <- e.Run(context.Background()) }()

	for s, src := range srcs {
		for k := 0; k < samples; k++ {
			src.push([]uint64{uint64(s), uint64(k), 3, 4})
		}
	}
	waitUntil(t, "buffered samples scored", func() bool {
		return e.Stats(false).Verdicts == streams*samples
	})

	e.Drain()
	select {
	case rerr := <-run:
		if rerr != nil {
			t.Fatalf("drained Run returned %v", rerr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Drain")
	}
	for i := range got {
		requireGapFree(t, fmt.Sprintf("q%d", i), got[i].verdicts, samples, 0)
	}
}

// TestDrainIdleEngine: a draining engine with no streams ever added
// must still be stoppable — an idle ingest front door drains to
// nothing.
func TestDrainIdleEngine(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, WheelSlots: 2, Policy: supervise.Block})
	e.Drain()
	run := make(chan error, 1)
	go func() { run <- e.Run(context.Background()) }()
	select {
	case rerr := <-run:
		if rerr != nil {
			t.Fatalf("idle drained Run returned %v", rerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle draining engine never exited Run")
	}
}

// TestAddRemoveRaceDrain races Add and Remove against an in-progress
// drain (run with -race). Every Add must either fully succeed — its
// stream then finishes under the drain — or fail with ErrDraining;
// nothing may wedge Run.
func TestAddRemoveRaceDrain(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, WheelSlots: 4, Policy: supervise.Block})
	if err := e.Add(StreamConfig{ID: "seed", Source: source.NewSynthetic(1, 4)}); err != nil {
		t.Fatal(err)
	}
	run := make(chan error, 1)
	go func() { run <- e.Run(context.Background()) }()
	waitUntil(t, "engine warm", func() bool { return e.Stats(false).Verdicts > 0 })

	const adders, perAdder = 4, 50
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				id := fmt.Sprintf("r%d-%d", a, i)
				err := e.Add(StreamConfig{
					ID:        id,
					Source:    source.NewSynthetic(uint64(a*1000+i+2), 4),
					Intervals: 3,
				})
				switch {
				case err == nil:
					admitted.Add(1)
					if i%5 == 0 {
						// Some of the admitted streams get yanked while
						// the drain is (or is about to be) in flight.
						e.Remove(id)
					}
				case errors.Is(err, ErrDraining):
					// Expected once the drain lands.
				default:
					t.Errorf("Add %s: %v", id, err)
					return
				}
			}
		}(a)
	}
	time.Sleep(2 * time.Millisecond)
	e.Drain()
	wg.Wait()

	select {
	case rerr := <-run:
		if rerr != nil {
			t.Fatalf("Run returned %v", rerr)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Run did not return after racing Add/Remove/Drain")
	}
	if admitted.Load() == 0 {
		t.Fatal("drain landed before any Add — race window missed entirely")
	}
	if e.Stats(false).Live != 0 {
		t.Fatalf("live streams left after drain: %d", e.Stats(false).Live)
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
