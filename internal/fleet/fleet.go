// Package fleet is the multi-stream serving engine above the supervised
// pipeline: one process monitoring N programs at once — the paper's
// 10 ms sampling interval per stream — on a fixed pool of M worker
// shards, instead of N× the pipeline's three goroutines.
//
// The shape of the engine:
//
//		            ┌── timer wheel (one ticker for every stream) ──┐
//		            │ slot 0: h0 h4 h8 …   slot 1: h1 h5 h9 …   …   │
//		            └──────┬────────────────────┬───────────────────┘
//		     staged batch  │ (due streams)      │  per-shard SPSC ring
//		                   ▼                    ▼
//		            [shard 0]            [shard 1]      … [shard M-1]
//		          chain replica         chain replica
//		          per-stage Batcher     per-stage Batcher
//		                    │                    │
//		        gather → one ScoreBatch pass per stage → demux verdicts
//
//	  - One timer wheel drives every stream's sampling interval: streams
//	    are spread round-robin over the wheel's slots, the wheel ticks
//	    once per slot, and a full rotation harvests every live stream
//	    exactly once. One ticker total, not one per stream.
//	  - The wheel's bookkeeping is dense: slots hold int32 handles into
//	    chunked slabs of stream records, and stream chain state is carved
//	    from per-shard arenas in admission order, so a harvest pass walks
//	    contiguous memory. String IDs exist only at the admission,
//	    removal and checkpoint boundaries.
//	  - Each tick, the due streams are appended in place to a per-shard
//	    staging batch. An adaptive controller decides when to hand the
//	    batch over: a shard that keeps up gets a batch per tick (lowest
//	    latency), a backlogged shard gets batches coalesced across
//	    several ticks (amortised hand-off and inference), and every
//	    rotation boundary force-flushes so a batch never carries the same
//	    stream twice. The hand-off itself is a fixed single-producer/
//	    single-consumer ring per shard: batches stay resident in the
//	    ring's slots and only entry slices are swapped, so the wheel →
//	    shard path is a few atomics, no mutex, no channel hop.
//	  - The shard reads each source, runs the chain's BeginObserve half
//	    (health, stage selection, feature gather), then scores all
//	    gathered vectors in one Batcher pass per stage — cross-stream
//	    batched inference over the shard's model replica — and demuxes
//	    the scores back through each stream's CommitScore. The split pair
//	    is bit-identical to FallbackChain.Observe, so a fleet stream's
//	    verdicts match a dedicated pipeline's exactly (under the Block
//	    policy).
//	  - Chain state is per stream; trained models are per shard. Models
//	    reuse internal scratch (one scratch owner per goroutine), so each
//	    shard gets a full replica via core.NewChainReplicator and every
//	    stream's chain is assembled from its shard's detectors.
//	  - Steady state allocates nothing per interval per stream: staging
//	    batches and ring slots reuse their entry storage, sample buffers
//	    and scoring matrices are per-shard scratch, and the wheel's
//	    bookkeeping is fixed-size.
//	  - The PR 2 supervision vocabulary carries over per stream: a
//	    circuit breaker per source, lost-interval repair through the
//	    chain's hold-last path, drop-oldest shedding with lag accounting
//	    (a shard that falls behind sheds whole batches and the gap is
//	    repaired, keeping verdicts current rather than late), runtime
//	    add/remove, and fleet-wide chain-state checkpoints through the
//	    crash-safe store.
package fleet

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/source"
	"repro/internal/supervise"
)

// StateVersion is the checkpoint payload version for fleet state
// (callers pass it to core.NewCheckpointStore).
const StateVersion = 1

// ErrDraining reports an Add against a draining engine: once Drain has
// been called the engine only finishes existing streams, it admits no
// new ones. Callers (the ingest front door, a coordinator handing
// streams off) match it with errors.Is and route the stream elsewhere.
var ErrDraining = errors.New("fleet: engine draining")

// Config parameterises a fleet engine.
type Config struct {
	// Chain is the trained template chain every shard replicates. It is
	// only serialised, never scored through, so the caller may keep
	// using it.
	Chain *core.FallbackChain
	// NewChain, when set, overrides the replica factory (Chain is then
	// ignored). Tests use it to supply chains whose models cannot
	// round-trip through gob.
	NewChain func() (*core.FallbackChain, error)
	// Shards is the worker pool size (<=0 means GOMAXPROCS).
	Shards int
	// WheelSlots is the number of timer-wheel slots streams are spread
	// over (<=0 means 32). More slots smooth the per-tick burst; the
	// rotation period (one sampling interval) is unchanged.
	WheelSlots int
	// Interval is each stream's sampling interval — the wheel's full
	// rotation period, the paper's 10 ms. 0 runs unpaced (benchmarks:
	// rotations proceed as fast as the shards drain them).
	Interval time.Duration
	// Policy is the shard-ring backpressure policy: Block (lossless,
	// deterministic verdict streams) or DropOldest (shed whole batches
	// when a shard lags; the holes are repaired with hold-last
	// verdicts).
	Policy supervise.OverflowPolicy
	// PendingBatches bounds each shard's ring, in published batches
	// (<=0 means 4).
	PendingBatches int
	// MaxHarvestTicks caps how many wheel ticks the adaptive batch
	// controller may coalesce into one shard batch (<=0 means
	// min(8, WheelSlots); 1 pins the legacy batch-per-tick behaviour).
	// Coalescing never crosses a rotation boundary, so a batch carries
	// each stream at most once regardless of the cap.
	MaxHarvestTicks int
	// Breaker is the default per-stream circuit breaker configuration.
	Breaker supervise.BreakerConfig
	// Checkpoint, when set, receives periodic fleet-wide chain-state
	// checkpoints (payload version StateVersion).
	Checkpoint *core.CheckpointStore
	// CheckpointEvery is the number of wheel rotations between fleet
	// checkpoints (<=0 means 64).
	CheckpointEvery int
	// Interpreted pins every shard batcher to the interpreted scoring
	// path even when the template's models compile. The compiled path
	// is the default; this knob exists for baselines (perf comparisons)
	// and equivalence tests — both engines must emit bit-identical
	// verdict streams. Equivalent to Tier: core.TierInterpreted; kept
	// for existing callers.
	Interpreted bool
	// Tier selects the inference tier every shard batcher scores
	// through: compiled (default, bit-identical), quantized (fixed-point
	// fast tier, statistical equivalence, per-model fallback to
	// compiled), or interpreted. Interpreted==true overrides it.
	Tier core.Tier
}

// tier resolves the configured inference tier, folding the legacy
// Interpreted knob in.
func (c Config) tier() core.Tier {
	if c.Interpreted {
		return core.TierInterpreted
	}
	return c.Tier
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) wheelSlots() int {
	if c.WheelSlots > 0 {
		return c.WheelSlots
	}
	return 32
}

func (c Config) pendingBatches() int {
	if c.PendingBatches > 0 {
		return c.PendingBatches
	}
	return 4
}

func (c Config) maxHarvestTicks() int {
	slots := c.wheelSlots()
	m := c.MaxHarvestTicks
	if m <= 0 {
		m = 8
	}
	if m > slots {
		m = slots
	}
	return m
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 64
}

// StreamConfig describes one monitored stream.
type StreamConfig struct {
	// ID names the stream. IDs are unique for the engine's lifetime:
	// a finished or removed stream's ID may not be reused, because
	// per-stream stats and checkpoint state maps are keyed by ID.
	ID string
	// Source produces the stream's counter readings. Sources that
	// implement source.BufferedSource sample allocation-free. Reads
	// happen on the owning shard's goroutine; a source must not block
	// unboundedly (honour ctx) — a slow source shows up as shard lag,
	// and under DropOldest is shed around. Sources that implement
	// source.Queued (push-fed network streams) are only harvested when
	// they have a sample pending, so a client-paced stream never
	// fabricates readings, and the stream finishes once the source is
	// closed and drained.
	Source source.Source
	// Intervals, when positive, bounds the stream: it finishes after
	// emitting that many verdicts. 0 streams until removed (or, for
	// Queued sources, until the source closes and drains).
	Intervals int
	// OnVerdict, when set, observes every verdict (called from the
	// owning shard's goroutine).
	OnVerdict func(core.Verdict)
	// OnFinish, when set, fires exactly once when the stream finishes
	// (horizon reached, or a Queued source closed and drained). It may
	// run on a shard goroutine or under the engine's internal lock, so
	// it must be quick and must not call back into the Engine.
	OnFinish func()
	// Breaker overrides the engine's default breaker configuration when
	// non-zero.
	Breaker supervise.BreakerConfig
}

// handle is a dense index into the engine's stream slabs — the wheel's
// whole vocabulary for a stream. String IDs appear only at admission,
// removal and checkpoint boundaries.
type handle int32

// Stream records live in chunked slabs: fixed arrays that never move,
// so a *stream stays valid forever while streams admitted together sit
// next to each other in memory (and, chains coming from the owning
// shard's arena, so does their run-time chain state).
const (
	streamBlockShift = 8
	streamBlockSize  = 1 << streamBlockShift
	streamBlockMask  = streamBlockSize - 1
)

type streamBlock [streamBlockSize]stream

// streamAt resolves a handle against a block-table snapshot.
func streamAt(blocks []*streamBlock, h handle) *stream {
	return &blocks[h>>streamBlockShift][h&streamBlockMask]
}

// stream is the engine's per-stream record. The owning shard is the
// only goroutine that touches the chain and breaker; the wheel owns
// draining/pruned under the engine mutex; everything shared is atomic.
type stream struct {
	id        string
	slot      int
	shardIdx  int
	src       source.Source
	bsrc      source.BufferedSource // nil when src is unbuffered
	qsrc      source.Queued         // nil when src is pull-paced
	chain     *core.FallbackChain
	br        *supervise.Breaker
	horizon   int
	onVerdict func(core.Verdict)
	onFinish  func()

	// Wheel-owned, under Engine.mu.
	draining bool
	pruned   bool

	rot         atomic.Int64 // intervals harvested (wheel-owned writes)
	done        atomic.Int64 // verdicts emitted (shard-owned writes)
	lost        atomic.Int64
	srcFails    atomic.Int64
	badFrames   atomic.Int64
	inflight    atomic.Int64 // queued-source samples claimed by staged entries
	activeStage atomic.Int32
	removed     atomic.Bool
	finished    atomic.Bool
}

// finish marks the stream finished, firing OnFinish exactly once no
// matter which side (shard horizon accounting or wheel drain pass) gets
// there first.
func (s *stream) finish() {
	if s.finished.CompareAndSwap(false, true) && s.onFinish != nil {
		s.onFinish()
	}
}

// Engine is a sharded multi-stream serving engine. Build with New, add
// streams with Add (before or during Run), and drive it with Run.
// Stats may be read concurrently; Run must not be called concurrently
// with itself.
type Engine struct {
	cfg        Config
	shards     []*shard
	stageNames []string
	maxTicks   int // resolved MaxHarvestTicks

	running      atomic.Bool
	draining     atomic.Bool
	tick         atomic.Int64
	verdictCount atomic.Int64
	lostCount    atomic.Int64
	ckptOK       atomic.Int64
	ckptErr      atomic.Int64
	ckptWG       sync.WaitGroup

	mu          sync.Mutex
	blocks      []*streamBlock      // stream slabs; blocks never move
	nstreams    int                 // handles handed out (streams ever added)
	slots       [][]handle          // wheel slots
	byID        map[string]handle   // live (unpruned) streams by id
	ids         map[string]struct{} // every ID ever accepted (no reuse)
	nextIdx     int
	live        int
	everAdded   bool
	lastCkptRot int64
	restored    map[string]core.ChainState
	// pendingCaptures are CaptureStates requests waiting for the wheel
	// to route their markers through the shard rings (the wheel is the
	// rings' only producer). wheelDone flips once the wheel loop exits
	// and has swept the leftovers.
	pendingCaptures []*ckptReq
	wheelDone       bool

	// Per-shard staging, wheel-owned (filled under mu, flushed outside
	// it): the tick harvest appends due streams in place, and the
	// adaptive controller decides when each shard's batch is handed to
	// its ring.
	staging     []*batch
	drainStage  []*batch
	stagedTicks []int
	coalesce    []int
	flushDue    []bool
}

// New validates cfg, replicates the chain once per shard, and builds
// the engine.
func New(cfg Config) (*Engine, error) {
	newChain := cfg.NewChain
	if newChain == nil {
		if cfg.Chain == nil {
			return nil, errors.New("fleet: config needs a trained chain (or a NewChain factory)")
		}
		// Under the quantized tier, lower the template's stages before
		// replicating so every shard's detectors share one set of
		// fixed-point artifacts (the replicator propagates whatever the
		// template cached).
		if cfg.tier() == core.TierQuantized {
			for _, d := range cfg.Chain.Detectors() {
				d.Quantized()
			}
		}
		var err error
		newChain, err = core.NewChainReplicator(cfg.Chain)
		if err != nil {
			return nil, err
		}
	}
	nshards := cfg.shards()
	e := &Engine{
		cfg:         cfg,
		shards:      make([]*shard, nshards),
		maxTicks:    cfg.maxHarvestTicks(),
		slots:       make([][]handle, cfg.wheelSlots()),
		byID:        make(map[string]handle),
		ids:         make(map[string]struct{}),
		staging:     make([]*batch, nshards),
		drainStage:  make([]*batch, nshards),
		stagedTicks: make([]int, nshards),
		coalesce:    make([]int, nshards),
		flushDue:    make([]bool, nshards),
	}
	for i := range e.shards {
		tmpl, err := newChain()
		if err != nil {
			return nil, fmt.Errorf("fleet: replicating chain for shard %d: %w", i, err)
		}
		if i == 0 {
			e.stageNames = make([]string, tmpl.Stages()+1)
			for s := range e.stageNames {
				e.stageNames[s] = tmpl.StageName(s)
			}
		}
		e.shards[i] = newShard(e, i, tmpl, cfg)
		e.staging[i] = &batch{}
		e.drainStage[i] = &batch{drain: true}
		e.coalesce[i] = 1
	}
	return e, nil
}

// Shards returns the worker pool size.
func (e *Engine) Shards() int { return len(e.shards) }

// Rotations returns how many full wheel rotations have completed.
func (e *Engine) Rotations() int64 {
	return e.tick.Load() / int64(len(e.slots))
}

// Add registers a stream, before or during Run. The stream's chain
// state starts cold unless a RestoreState checkpoint carried its ID.
// A draining engine refuses new streams with ErrDraining.
func (e *Engine) Add(sc StreamConfig) error {
	if sc.ID == "" {
		return errors.New("fleet: stream needs an ID")
	}
	if sc.Source == nil {
		return errors.New("fleet: stream needs a source")
	}
	if sc.Intervals < 0 {
		return errors.New("fleet: negative interval horizon")
	}
	brCfg := sc.Breaker
	if brCfg == (supervise.BreakerConfig{}) {
		brCfg = e.cfg.Breaker
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining.Load() {
		return fmt.Errorf("fleet: adding stream %q: %w", sc.ID, ErrDraining)
	}
	if _, dup := e.ids[sc.ID]; dup {
		return fmt.Errorf("fleet: duplicate stream %q", sc.ID)
	}
	sh := e.shards[e.nextIdx%len(e.shards)]
	// Sibling chain out of the shard's arena: the shard's models, this
	// stream's run-time state in the shard's slabs. NewSibling never
	// evaluates the models, so assembling the chain here is safe while
	// the shard is concurrently scoring through them.
	chain := sh.arena.NewSibling()
	if st, ok := e.restored[sc.ID]; ok {
		if err := chain.SetState(st); err != nil {
			return fmt.Errorf("fleet: restoring stream %q: %w", sc.ID, err)
		}
		delete(e.restored, sc.ID)
	}
	h := handle(e.nstreams)
	if int(h)>>streamBlockShift == len(e.blocks) {
		e.blocks = append(e.blocks, new(streamBlock))
	}
	s := streamAt(e.blocks, h)
	s.id = sc.ID
	s.slot = e.nextIdx % len(e.slots)
	s.shardIdx = sh.idx
	s.src = sc.Source
	s.bsrc, _ = sc.Source.(source.BufferedSource)
	s.qsrc, _ = sc.Source.(source.Queued)
	s.chain = chain
	s.br = supervise.NewBreaker(brCfg)
	s.horizon = sc.Intervals
	s.onVerdict = sc.OnVerdict
	s.onFinish = sc.OnFinish
	e.nstreams++
	e.nextIdx++
	e.slots[s.slot] = append(e.slots[s.slot], h)
	e.ids[sc.ID] = struct{}{}
	e.byID[sc.ID] = h
	e.live++
	sh.liveStreams.Add(1)
	e.everAdded = true
	return nil
}

// Remove unregisters a live stream. In-flight work for it is skipped;
// the wheel prunes it on its next pass.
func (e *Engine) Remove(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.byID[id]
	if !ok {
		return fmt.Errorf("fleet: no live stream %q", id)
	}
	streamAt(e.blocks, h).removed.Store(true)
	return nil
}

// Drain moves the engine into drain mode and returns immediately: no
// new streams are admitted (Add returns ErrDraining), every queued
// (push-fed) stream finishes once its buffered samples are scored, and
// unbounded pull streams finish at their next rotation boundary.
// Bounded streams still run to their horizon only if their source keeps
// producing; a quiet queued stream finishes rather than waiting for a
// client that has been told to go away. Once every stream has finished,
// Run writes the final fleet checkpoint and returns nil — the graceful
// counterpart to cancelling Run's context, which abandons in-flight
// work and skips the final save. Draining is one-way for the engine's
// lifetime; calling Drain twice is harmless.
func (e *Engine) Drain() {
	e.draining.Store(true)
}

// Draining reports whether Drain has been called.
func (e *Engine) Draining() bool { return e.draining.Load() }

// RestoredInterval reports the checkpointed chain interval waiting for
// stream id — how many verdicts its timeline had emitted when the
// checkpoint was taken — or ok=false when no restored state is pending
// for that ID. The ingest plane uses it to tell a reconnecting client
// where to resume its sample sequence before Add claims the state.
func (e *Engine) RestoredInterval(id string) (interval int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.restored[id]
	if !ok {
		return 0, false
	}
	return st.Interval, true
}

// slotDuration is the wheel's tick period (0 = unpaced).
func (e *Engine) slotDuration() time.Duration {
	if e.cfg.Interval <= 0 {
		return 0
	}
	return e.cfg.Interval / time.Duration(len(e.slots))
}

// Run drives the fleet until every bounded stream finishes (and at
// least one stream was ever added) or ctx is cancelled. The error is
// nil on a drained fleet and ctx.Err() on cancellation; per-stream
// failures never fail the fleet — they are breaker trips and lost
// verdicts.
func (e *Engine) Run(ctx context.Context) error {
	if !e.running.CompareAndSwap(false, true) {
		return errors.New("fleet: Run already active")
	}
	defer e.running.Store(false)
	e.mu.Lock()
	e.wheelDone = false
	e.mu.Unlock()

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(rctx)
		}(sh)
	}
	// Cancellation must release the wheel and shards from ring waits.
	stopWake := context.AfterFunc(rctx, e.wakeAll)
	defer stopWake()

	var ticker *time.Ticker
	if d := e.slotDuration(); d > 0 {
		ticker = time.NewTicker(d)
		defer ticker.Stop()
	}
	for rctx.Err() == nil {
		harvested := e.tickOnce(rctx)
		if e.drained() {
			break
		}
		if ticker != nil {
			select {
			case <-ticker.C:
			case <-rctx.Done():
			}
		} else if !harvested {
			// Unpaced and nothing due (tail of a drain, or an idle
			// fleet): yield instead of spinning the lock.
			runtime.Gosched()
		}
	}
	// The wheel is the rings' only producer; once it stops, any capture
	// request it never picked up must be aborted or its waiter hangs.
	e.mu.Lock()
	e.wheelDone = true
	pend := e.pendingCaptures
	e.pendingCaptures = nil
	e.mu.Unlock()
	for _, req := range pend {
		req.aborted.Store(true)
		for range e.shards {
			req.wg.Done()
		}
	}
	cancelWork := rctx.Err() != nil
	for _, sh := range e.shards {
		sh.q.close()
	}
	if cancelWork {
		cancel()
	}
	wg.Wait()
	e.ckptWG.Wait()
	if e.cfg.Checkpoint != nil && !cancelWork {
		// Shards are parked: safe to read every chain from here.
		if err := e.saveAll(); err != nil {
			e.ckptErr.Add(1)
		} else {
			e.ckptOK.Add(1)
		}
	}
	return ctx.Err()
}

func (e *Engine) wakeAll() {
	for _, sh := range e.shards {
		sh.q.wakeAll()
	}
}

// drained reports whether every stream ever added has finished. A
// draining engine with no live streams is drained even when nothing was
// ever added — an idle ingest front door must still be stoppable.
func (e *Engine) drained() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return (e.everAdded || e.draining.Load()) && e.live == 0
}

// tickOnce advances the wheel one slot: it harvests the slot's due
// streams into the per-shard staging batches, prunes finished and
// removed streams, stages tail-repair drains for shed horizons, flushes
// whatever the adaptive controller says is due, and routes checkpoint
// and capture markers through the rings. It reports whether it staged
// or published anything.
func (e *Engine) tickOnce(ctx context.Context) bool {
	now := time.Now()

	e.mu.Lock()
	t := e.tick.Load()
	nslots := int64(len(e.slots))
	slot := int(t % nslots)
	rot := t / nslots
	e.tick.Store(t + 1)

	staged := false
	draining := e.draining.Load()
	hs := e.slots[slot]
	keep := hs[:0]
	for _, h := range hs {
		s := streamAt(e.blocks, h)
		if s.removed.Load() || s.finished.Load() {
			e.pruneLocked(s)
			continue
		}
		srot := s.rot.Load()
		if s.horizon > 0 && srot >= int64(s.horizon) {
			// Fully harvested; waiting on the shard for the tail.
			if s.done.Load() >= int64(s.horizon) {
				s.finish()
				e.pruneLocked(s)
				continue
			}
			if e.cfg.Policy == supervise.DropOldest && !s.draining {
				// The final harvests may have been shed; one
				// unsheddable drain guarantees the tail completes.
				s.draining = true
				db := e.drainStage[s.shardIdx]
				if len(db.entries) == 0 {
					db.rot, db.at = rot, now
				}
				db.entries = append(db.entries, entry{s: s, interval: s.horizon - 1, drain: true})
				staged = true
			}
			keep = append(keep, h)
			continue
		}
		if s.qsrc != nil {
			// Push-fed stream: only due when a sample is buffered
			// beyond those already claimed by staged or in-flight
			// entries. With nothing pending the stream finishes if its
			// writer hung up (or the engine is draining) and the shard
			// has caught up; otherwise it simply isn't harvested this
			// rotation.
			if int64(s.qsrc.Pending()) <= s.inflight.Load() {
				if (s.qsrc.Closed() || draining) && s.done.Load() >= srot {
					s.finish()
					e.pruneLocked(s)
					continue
				}
				keep = append(keep, h)
				continue
			}
			s.inflight.Add(1)
		} else if draining && s.horizon == 0 {
			// Unbounded pull stream under drain: stop at the next
			// rotation boundary, once in-flight harvests have landed.
			if s.done.Load() >= srot {
				s.finish()
				e.pruneLocked(s)
				continue
			}
			keep = append(keep, h)
			continue
		}
		s.rot.Store(srot + 1)
		st := e.staging[s.shardIdx]
		if len(st.entries) == 0 {
			st.rot, st.at = rot, now
		}
		st.entries = append(st.entries, entry{s: s, interval: int(srot)})
		staged = true
		keep = append(keep, h)
	}
	e.slots[slot] = keep

	// Checkpoint cadence and any capture requests parked on the wheel.
	captures := e.pendingCaptures
	e.pendingCaptures = nil
	var ckReq *ckptReq
	if e.cfg.Checkpoint != nil && slot == 0 && rot > 0 &&
		rot%int64(e.cfg.checkpointEvery()) == 0 && rot != e.lastCkptRot {
		e.lastCkptRot = rot
		ckReq = e.buildCkptLocked()
	}

	// Flush decisions: the rotation boundary always flushes (a batch
	// must never carry the same stream twice), markers flush everything
	// first so they stay ordered behind the work staged before them,
	// a drain marker flushes its shard, and otherwise a shard's batch
	// rides until the adaptive controller's tick budget is spent.
	flushAll := slot == int(nslots)-1 || ckReq != nil || len(captures) > 0
	for i := range e.shards {
		due := false
		if len(e.staging[i].entries) > 0 {
			e.stagedTicks[i]++
			due = flushAll || e.stagedTicks[i] >= e.coalesce[i] ||
				len(e.drainStage[i].entries) > 0
		}
		e.flushDue[i] = due
	}
	e.mu.Unlock()

	any := staged
	for i, sh := range e.shards {
		if e.flushDue[i] {
			e.flushStaging(ctx, sh)
			any = true
		}
		if len(e.drainStage[i].entries) > 0 {
			e.publishDrain(ctx, sh)
			any = true
		}
	}
	if ckReq != nil {
		e.publishMarkers(ctx, ckReq)
		e.collectCkpt(ckReq)
		any = true
	}
	for _, req := range captures {
		e.publishMarkers(ctx, req)
		any = true
	}
	return any
}

// flushStaging hands a shard's staged batch to its ring: the ring
// slot's resident batch and the staging batch swap entry storage, so
// the hand-off copies two slice headers and allocates nothing. Runs off
// the engine lock — staging is wheel-owned, and a full ring must not
// block Add or Stats.
func (e *Engine) flushStaging(ctx context.Context, sh *shard) {
	// Adaptive batch sizing: a backlogged ring means per-batch overhead
	// is what to amortise — double the tick budget; an empty ring means
	// the shard keeps up — walk back toward a batch per tick.
	i := sh.idx
	if sh.q.depth() > 0 {
		if c := e.coalesce[i] * 2; c <= e.maxTicks {
			e.coalesce[i] = c
		} else {
			e.coalesce[i] = e.maxTicks
		}
	} else if e.coalesce[i] > 1 {
		e.coalesce[i]--
	}

	st := e.staging[i]
	rb, shed, err := sh.q.stage(ctx)
	if shed != nil {
		e.accountShed(sh, shed)
	}
	if err != nil {
		// Cancelled or closing: the entries stay staged; Run is on its
		// way out and the wheel will not tick again.
		return
	}
	rb.rot, rb.at = st.rot, st.at
	rb.drain, rb.ckpt, rb.ckStrms = false, nil, nil
	rb.entries, st.entries = st.entries, rb.entries[:0]
	sh.q.publish()
	e.stagedTicks[i] = 0
}

// publishDrain hands a shard's staged tail-repair batch to its ring,
// after the shard's normal staging so interval order holds.
func (e *Engine) publishDrain(ctx context.Context, sh *shard) {
	db := e.drainStage[sh.idx]
	rb, shed, err := sh.q.stage(ctx)
	if shed != nil {
		e.accountShed(sh, shed)
	}
	if err != nil {
		return
	}
	rb.rot, rb.at = db.rot, db.at
	rb.drain, rb.ckpt, rb.ckStrms = true, nil, nil
	rb.entries, db.entries = db.entries, rb.entries[:0]
	sh.q.publish()
}

// publishMarkers routes one checkpoint/capture marker through every
// shard's ring. The request's WaitGroup was charged len(shards) at
// creation; a failed publish burns its count and flags the abort.
func (e *Engine) publishMarkers(ctx context.Context, req *ckptReq) {
	rot := e.tick.Load() / int64(len(e.slots))
	now := time.Now()
	for i, sh := range e.shards {
		rb, shed, err := sh.q.stage(ctx)
		if shed != nil {
			e.accountShed(sh, shed)
		}
		if err != nil {
			req.aborted.Store(true)
			req.wg.Done()
			continue
		}
		rb.rot, rb.at = rot, now
		rb.drain = false
		rb.ckpt = req
		rb.ckStrms = req.perShard[i]
		rb.entries = rb.entries[:0]
		sh.q.publish()
	}
}

// accountShed books a batch the ring shed to admit newer work, and
// releases any queued-source sample claims its entries held.
func (e *Engine) accountShed(sh *shard, shed *batch) {
	sh.shedBatches.Add(1)
	sh.shedIntervals.Add(int64(len(shed.entries)))
	for i := range shed.entries {
		if s := shed.entries[i].s; s.qsrc != nil {
			s.inflight.Add(-1)
		}
	}
}

// pruneLocked retires a stream from the wheel (mu held).
func (e *Engine) pruneLocked(s *stream) {
	if s.pruned {
		return
	}
	s.pruned = true
	e.live--
	delete(e.byID, s.id)
	e.shards[s.shardIdx].liveStreams.Add(-1)
}

// buildCkptLocked assembles a checkpoint request covering every live
// stream, grouped by owning shard (mu held). The WaitGroup is charged
// one count per shard up front.
func (e *Engine) buildCkptLocked() *ckptReq {
	req := &ckptReq{
		states:   make(map[string]core.ChainState, len(e.byID)),
		perShard: make([][]*stream, len(e.shards)),
	}
	for _, h := range e.byID {
		s := streamAt(e.blocks, h)
		req.perShard[s.shardIdx] = append(req.perShard[s.shardIdx], s)
	}
	req.wg.Add(len(e.shards))
	return req
}

// collectCkpt spawns the collector that persists a checkpoint request's
// assembled state map once every shard has contributed.
func (e *Engine) collectCkpt(req *ckptReq) {
	e.ckptWG.Add(1)
	go func() {
		defer e.ckptWG.Done()
		req.wg.Wait()
		if req.aborted.Load() {
			return // shutdown mid-gather; the final save covers it
		}
		if err := e.saveStates(req.states); err != nil {
			e.ckptErr.Add(1)
		} else {
			e.ckptOK.Add(1)
		}
	}()
}

// fleetState is the gob checkpoint payload: every stream's chain state.
type fleetState struct {
	Streams map[string]core.ChainState
}

func (e *Engine) saveStates(states map[string]core.ChainState) error {
	return e.cfg.Checkpoint.Save(func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(fleetState{Streams: states})
	})
}

// saveAll snapshots every stream's chain directly — only safe when the
// shards are parked (Run's final save, or between Runs).
func (e *Engine) saveAll() error {
	e.mu.Lock()
	blocks, n := e.blocks, e.nstreams
	e.mu.Unlock()
	states := make(map[string]core.ChainState, n)
	for h := handle(0); int(h) < n; h++ {
		s := streamAt(blocks, h)
		if s.removed.Load() {
			continue
		}
		states[s.id] = s.chain.State()
	}
	return e.saveStates(states)
}

// SaveState checkpoints every stream's chain state to the configured
// store. Must not be called during Run (Run checkpoints on its own
// cadence and once more at drain).
func (e *Engine) SaveState() error {
	if e.cfg.Checkpoint == nil {
		return errors.New("fleet: no checkpoint store configured")
	}
	if e.running.Load() {
		return errors.New("fleet: SaveState during Run")
	}
	return e.saveAll()
}

// RestoreState recovers the most recent good fleet checkpoint and holds
// the per-stream chain states for subsequent Adds to claim by ID. Call
// before adding streams in a restarted process. A store with no usable
// checkpoint returns an error wrapping core.ErrNoCheckpoint — the
// caller starts cold, which is not a failure.
func (e *Engine) RestoreState() (gen int, quarantined []string, err error) {
	if e.cfg.Checkpoint == nil {
		return -1, nil, core.ErrNoCheckpoint
	}
	return e.cfg.Checkpoint.Recover(func(payload []byte) error {
		var st fleetState
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); derr != nil {
			return derr
		}
		e.mu.Lock()
		e.restored = st.Streams
		e.mu.Unlock()
		return nil
	})
}
