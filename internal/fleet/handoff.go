package fleet

// Handoff support: the cluster plane migrates individual streams
// between engines by capturing their chain states on the old owner and
// seeding them into the new owner, where the ingest plane's restored-
// state path (RestoredInterval + Add) claims them exactly as it claims
// a disk checkpoint after a restart. Nothing here persists anything —
// the coordinator is the transport.

import (
	"context"
	"errors"
	"sort"

	"repro/internal/core"
)

var errCaptureAborted = errors.New("fleet: state capture aborted (engine stopping)")

// CaptureStates snapshots the chain states of the named streams — nil
// ids means every stream ever added, finished ones included, the same
// coverage as a checkpoint — without persisting them. While the engine
// is running, each chain may only be read by its owning shard, so the
// capture parks on the wheel, which routes one marker through every
// shard's ring on its next tick (the wheel is the rings' only
// producer); the result reflects each stream's state at a batch
// boundary, and ctx bounds the wait. With the shards parked (before
// Run, or after it returned — including a cancelled Run) the chains are
// read directly. IDs with no matching stream are silently absent from
// the result.
func (e *Engine) CaptureStates(ctx context.Context, ids []string) (map[string]core.ChainState, error) {
	var want map[string]struct{}
	if ids != nil {
		want = make(map[string]struct{}, len(ids))
		for _, id := range ids {
			want[id] = struct{}{}
		}
	}
	req := &ckptReq{
		states: make(map[string]core.ChainState),
	}

	e.mu.Lock()
	req.perShard = make([][]*stream, len(e.shards))
	for h := handle(0); int(h) < e.nstreams; h++ {
		s := streamAt(e.blocks, h)
		if s.removed.Load() {
			continue
		}
		if want != nil {
			if _, ok := want[s.id]; !ok {
				continue
			}
		}
		req.perShard[s.shardIdx] = append(req.perShard[s.shardIdx], s)
	}
	running := e.running.Load()
	if running {
		if e.wheelDone {
			e.mu.Unlock()
			return nil, errCaptureAborted
		}
		req.wg.Add(len(e.shards))
		e.pendingCaptures = append(e.pendingCaptures, req)
	}
	e.mu.Unlock()

	if !running {
		for _, ss := range req.perShard {
			for _, s := range ss {
				if s.removed.Load() {
					continue
				}
				req.states[s.id] = s.chain.State()
			}
		}
		return req.states, nil
	}

	done := make(chan struct{})
	go func() {
		req.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if req.aborted.Load() {
		return nil, errCaptureAborted
	}
	req.mu.Lock()
	defer req.mu.Unlock()
	return req.states, nil
}

// SeedRestored installs externally supplied chain states for subsequent
// Adds to claim by ID — the coordinator-push counterpart of
// RestoreState's disk recovery. States are refused for IDs that are
// live or already used (their timeline authority is local), and an
// already-pending restored state is only replaced by a strictly newer
// one (higher interval): timelines advance monotonically, so an older
// snapshot arriving late must never rewind the resume position. It
// returns how many states were installed.
func (e *Engine) SeedRestored(states map[string]core.ChainState) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for id, st := range states {
		if _, used := e.ids[id]; used {
			continue
		}
		if cur, ok := e.restored[id]; ok && cur.Interval >= st.Interval {
			continue
		}
		if e.restored == nil {
			e.restored = make(map[string]core.ChainState)
		}
		e.restored[id] = st
		n++
	}
	return n
}

// Unfinished returns the IDs of every live (unfinished, unremoved)
// stream, sorted. An aborted shutdown logs these as abandoned so an
// operator knows exactly which timelines stopped mid-flight.
func (e *Engine) Unfinished() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.byID))
	for id := range e.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
