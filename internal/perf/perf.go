// Package perf models the Linux perf tool layer the paper collects HPC
// data with: a PMU with a small number of programmable counter
// registers (four on the Xeon X5550), event groups, batch scheduling of
// a large event list across multiple runs, and fixed-interval sampling
// (the paper samples every 10 ms).
//
// The central constraint the paper builds on is embodied here: only
// NumCounters events can be measured concurrently, so capturing all 44
// events requires either multiple runs (Batches — the paper's approach,
// 11 batches of 4) or time-multiplexing with scaling error
// (SampleMultiplexed — provided for the ablation study).
package perf

import (
	"errors"
	"fmt"

	"repro/internal/micro"
)

// NumCounters is the number of programmable HPC registers, matching the
// paper's Intel Xeon X5550 (Nehalem): four.
const NumCounters = 4

// DefaultCycleBudget is the simulated core-cycle budget of one 10 ms
// sampling interval. The simulator is scale-reduced: what matters for
// the detectors is per-interval event *ratios*, not absolute magnitude,
// so one simulated interval covers a representative slice of execution.
const DefaultCycleBudget = 24000

// Group is a set of events programmed onto the PMU together. All events
// in a group are counted concurrently over the same instructions, like
// a perf_event_open group.
type Group struct {
	events []micro.EventID
}

// ErrBadGroup marks an event-group validation failure (empty group, too
// many events for the PMU, invalid or duplicate events). Callers that
// wrap group construction — the supervision layer does, several levels
// deep — can still classify the failure with errors.Is.
var ErrBadGroup = errors.New("perf: invalid event group")

// NewGroup validates and builds an event group. At most NumCounters
// events may be scheduled concurrently and duplicates are rejected.
func NewGroup(events ...micro.EventID) (Group, error) {
	if len(events) == 0 {
		return Group{}, fmt.Errorf("%w: empty", ErrBadGroup)
	}
	if len(events) > NumCounters {
		return Group{}, fmt.Errorf("%w: %d events exceed %d counter registers", ErrBadGroup, len(events), NumCounters)
	}
	seen := map[micro.EventID]bool{}
	for _, ev := range events {
		if !ev.Valid() {
			return Group{}, fmt.Errorf("%w: invalid event %d", ErrBadGroup, ev)
		}
		if seen[ev] {
			return Group{}, fmt.Errorf("%w: duplicate event %v", ErrBadGroup, ev)
		}
		seen[ev] = true
	}
	g := Group{events: append([]micro.EventID(nil), events...)}
	return g, nil
}

// Events returns the group's events in programming order.
func (g Group) Events() []micro.EventID {
	return append([]micro.EventID(nil), g.events...)
}

// Size returns the number of events in the group.
func (g Group) Size() int { return len(g.events) }

// Batches splits an event list into consecutive groups of at most
// NumCounters events — the paper's "11 batches of 4 events" schedule
// for the 44-event list. Every batch requires a separate run of the
// application.
func Batches(events []micro.EventID) ([]Group, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("%w: no events to batch", ErrBadGroup)
	}
	var groups []Group
	for start := 0; start < len(events); start += NumCounters {
		end := start + NumCounters
		if end > len(events) {
			end = len(events)
		}
		g, err := NewGroup(events[start:end]...)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// Sample is one fixed-interval reading of a group: the event deltas
// accumulated during that interval.
type Sample struct {
	Interval     int      // interval index within the run
	Values       []uint64 // one delta per group event, in group order
	Instructions int      // instructions executed during the interval
}

// Program supplies per-interval stream parameters; workload.Run
// satisfies it.
type Program interface {
	IntervalParams(interval int) micro.StreamParams
}

// CounterWidth is the bit width of a hardware counter register.
// Nehalem general-purpose PMCs are 48 bits wide; counts wrap modulo
// 2^48 and the reader must reconstruct deltas, which Counters does.
const CounterWidth = 48

// Counters wraps a machine with PMU read-out logic. Only the events of
// the currently programmed group are visible, mirroring the register
// constraint of real hardware, and registers wrap at their bit width
// exactly as physical PMCs do.
type Counters struct {
	m     *micro.Machine
	group Group
	mask  uint64
	last  []uint64 // register views (masked) at the previous read
}

// Attach programs group onto the machine's PMU with the default
// 48-bit registers.
func Attach(m *micro.Machine, group Group) *Counters {
	return AttachWidth(m, group, CounterWidth)
}

// AttachWidth programs group onto a PMU with width-bit counter
// registers (1 <= width <= 63). Narrow widths are useful to study
// overflow behaviour; deltas remain correct as long as no single
// interval advances a counter by 2^width or more.
func AttachWidth(m *micro.Machine, group Group, width uint) *Counters {
	if width == 0 || width > 63 {
		panic("perf: counter width out of range")
	}
	c := &Counters{m: m, group: group, mask: (uint64(1) << width) - 1}
	c.last = c.registers()
	return c
}

// registers returns the current masked register values for the group.
func (c *Counters) registers() []uint64 {
	block := c.m.Counters()
	regs := make([]uint64, len(c.group.events))
	for i, ev := range c.group.events {
		regs[i] = block[ev] & c.mask
	}
	return regs
}

// ReadDelta returns the programmed events' deltas since the previous
// read (or attach), reconstructing across at most one register wrap —
// the same contract as an interrupt-less PMC reader.
func (c *Counters) ReadDelta() []uint64 {
	return c.ReadDeltaInto(make([]uint64, len(c.group.events)))
}

// ReadDeltaInto is ReadDelta writing into the caller-provided buffer
// (cap(out) >= the group size) and returning it resliced to the group
// size. The register snapshot updates in place, so a steady-state
// sampling loop reads the PMU with zero heap allocations.
func (c *Counters) ReadDeltaInto(out []uint64) []uint64 {
	out = out[:len(c.group.events)]
	block := c.m.Counters()
	for i, ev := range c.group.events {
		now := block[ev] & c.mask
		out[i] = (now - c.last[i]) & c.mask
		c.last[i] = now
	}
	return out
}

// SampleRun executes prog on m for the given number of fixed-cycle
// intervals with group programmed, returning one Sample per interval.
// This is the paper's per-batch collection: one full execution of the
// application observed through 4 counter registers.
func SampleRun(m *micro.Machine, prog Program, group Group, intervals int, cycleBudget uint64) []Sample {
	samples, _ := SampleRunInjected(m, prog, group, intervals, cycleBudget, nil)
	return samples
}

// Injector is the fault hook consulted by SampleRunInjected; the
// faults package provides the production implementation. A nil Injector
// means clean sampling.
type Injector interface {
	// CrashInterval returns the interval at which the run dies, or -1.
	// Consulted once, before sampling starts.
	CrashInterval(intervals int) int
	// BudgetJitter may perturb the interval's cycle budget.
	BudgetJitter(interval int, budget uint64) uint64
	// DropSample reports whether the interval's reading is lost.
	DropSample(interval int) bool
	// TransformSample corrupts the interval's counter deltas in place.
	TransformSample(interval int, values []uint64)
}

// ErrRunCrashed marks a sampling run killed mid-stream by fault
// injection; the samples gathered before the crash are still returned
// so callers can salvage them.
var ErrRunCrashed = errors.New("perf: sampling run crashed")

// SampleRunInjected is SampleRun with an optional fault injector
// threaded through every interval: the injector may jitter the cycle
// budget, drop whole readings, corrupt counter deltas, or kill the run
// partway. Dropped intervals are simply absent from the returned slice
// (Sample.Interval identifies the survivors). On a mid-run crash the
// partial sample prefix is returned together with an error wrapping
// ErrRunCrashed. With a nil injector it is byte-for-byte identical to
// SampleRun.
func SampleRunInjected(m *micro.Machine, prog Program, group Group, intervals int, cycleBudget uint64, inj Injector) ([]Sample, error) {
	if intervals <= 0 {
		return nil, nil
	}
	if cycleBudget == 0 {
		cycleBudget = DefaultCycleBudget
	}
	crash := -1
	if inj != nil {
		crash = inj.CrashInterval(intervals)
	}
	ctr := Attach(m, group)
	samples := make([]Sample, 0, intervals)
	for i := 0; i < intervals; i++ {
		if i == crash {
			return samples, fmt.Errorf("perf: interval %d/%d: %w", i, intervals, ErrRunCrashed)
		}
		budget := cycleBudget
		if inj != nil {
			budget = inj.BudgetJitter(i, budget)
		}
		p := prog.IntervalParams(i)
		n := m.RunCycles(&p, budget)
		vals := ctr.ReadDelta()
		if inj != nil {
			if inj.DropSample(i) {
				continue
			}
			inj.TransformSample(i, vals)
		}
		samples = append(samples, Sample{Interval: i, Values: vals, Instructions: n})
	}
	return samples, nil
}

// SampleMultiplexed executes prog once while time-slicing all groups
// onto the PMU within each interval, scaling each group's observed
// counts by the inverse of its time share — the standard perf
// multiplexing estimate, with its attendant error. Returned as one
// value slice per interval covering every event of every group, in
// batch order. Used by the multiplexing ablation (DESIGN.md §5).
func SampleMultiplexed(m *micro.Machine, prog Program, groups []Group, intervals int, cycleBudget uint64) [][]float64 {
	if intervals <= 0 || len(groups) == 0 {
		return nil
	}
	if cycleBudget == 0 {
		cycleBudget = DefaultCycleBudget
	}
	slice := cycleBudget / uint64(len(groups))
	if slice == 0 {
		slice = 1
	}
	out := make([][]float64, 0, intervals)
	for i := 0; i < intervals; i++ {
		p := prog.IntervalParams(i)
		row := make([]float64, 0, len(groups)*NumCounters)
		for _, g := range groups {
			ctr := Attach(m, g)
			m.RunCycles(&p, slice)
			vals := ctr.ReadDelta()
			scale := float64(len(groups)) // observed 1/len of the interval
			for _, v := range vals {
				row = append(row, float64(v)*scale)
			}
		}
		out = append(out, row)
	}
	return out
}
