package perf

import (
	"errors"
	"testing"

	"repro/internal/micro"
)

type constProg struct{ p micro.StreamParams }

func (c constProg) IntervalParams(int) micro.StreamParams { return c.p }

func prog() constProg {
	return constProg{p: micro.StreamParams{
		LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.15,
		CodeBytes: 16 << 10, HotCodeBytes: 2 << 10, HotCodeFrac: 0.9,
		DataBytes: 128 << 10, HotDataBytes: 8 << 10, HotDataFrac: 0.85,
		StrideFrac: 0.5, TakenFrac: 0.6, BranchBias: 0.95,
		RemoteFrac: 0.05, BaseIPC: 2, UopsPerInstr: 1.2,
	}}
}

func TestNewGroupValidation(t *testing.T) {
	// Every validation failure must classify as ErrBadGroup so callers
	// wrapping NewGroup several levels deep can still errors.Is it.
	if _, err := NewGroup(); !errors.Is(err, ErrBadGroup) {
		t.Errorf("empty group: %v, want ErrBadGroup", err)
	}
	if _, err := NewGroup(micro.EvInstructions, micro.EvCPUCycles, micro.EvBranchMisses,
		micro.EvCacheMisses, micro.EvLLCLoads); !errors.Is(err, ErrBadGroup) {
		t.Errorf("5-event group: %v, want ErrBadGroup", err)
	}
	if _, err := NewGroup(micro.EvInstructions, micro.EvInstructions); !errors.Is(err, ErrBadGroup) {
		t.Errorf("duplicate events: %v, want ErrBadGroup", err)
	}
	if _, err := NewGroup(micro.EventID(999)); !errors.Is(err, ErrBadGroup) {
		t.Errorf("invalid event: %v, want ErrBadGroup", err)
	}
	g, err := NewGroup(micro.EvInstructions, micro.EvBranchMisses)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Errorf("Size() = %d, want 2", g.Size())
	}
}

func TestBatchesCoverAllEvents(t *testing.T) {
	groups, err := Batches(micro.AllEvents())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 11 {
		t.Fatalf("44 events should form 11 batches of 4 (paper), got %d", len(groups))
	}
	seen := map[micro.EventID]bool{}
	for _, g := range groups {
		if g.Size() > NumCounters {
			t.Fatalf("batch exceeds %d registers", NumCounters)
		}
		for _, ev := range g.Events() {
			if seen[ev] {
				t.Fatalf("event %v scheduled twice", ev)
			}
			seen[ev] = true
		}
	}
	if len(seen) != int(micro.NumEvents) {
		t.Fatalf("batches cover %d events, want %d", len(seen), micro.NumEvents)
	}

	if _, err := Batches(nil); err == nil {
		t.Error("empty event list should fail")
	}
}

func TestSampleRunShapes(t *testing.T) {
	g, _ := NewGroup(micro.EvInstructions, micro.EvBranchInstructions, micro.EvCPUCycles, micro.EvL1DcacheLoads)
	m := micro.NewMachine(micro.FastConfig(), 1)
	samples := SampleRun(m, prog(), g, 10, 5000)
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	for i, s := range samples {
		if s.Interval != i {
			t.Errorf("sample %d has interval %d", i, s.Interval)
		}
		if len(s.Values) != 4 {
			t.Fatalf("sample has %d values, want 4", len(s.Values))
		}
		// cycles value (index 2) must meet the budget.
		if s.Values[2] < 5000 {
			t.Errorf("interval %d ran %d cycles, want >= 5000", i, s.Values[2])
		}
		if s.Instructions <= 0 {
			t.Errorf("interval %d executed no instructions", i)
		}
	}
}

func TestSampleRunDeterminism(t *testing.T) {
	g, _ := NewGroup(micro.EvInstructions, micro.EvBranchMisses)
	m1 := micro.NewMachine(micro.FastConfig(), 7)
	m2 := micro.NewMachine(micro.FastConfig(), 7)
	s1 := SampleRun(m1, prog(), g, 5, 4000)
	s2 := SampleRun(m2, prog(), g, 5, 4000)
	for i := range s1 {
		for j := range s1[i].Values {
			if s1[i].Values[j] != s2[i].Values[j] {
				t.Fatal("sampling is not deterministic")
			}
		}
	}
}

func TestSampleRunEdgeCases(t *testing.T) {
	g, _ := NewGroup(micro.EvInstructions)
	m := micro.NewMachine(micro.FastConfig(), 1)
	if s := SampleRun(m, prog(), g, 0, 1000); s != nil {
		t.Error("zero intervals should return nil")
	}
	// Zero budget falls back to the default.
	s := SampleRun(m, prog(), g, 1, 0)
	if len(s) != 1 || s[0].Values[0] == 0 {
		t.Error("default budget sampling failed")
	}
}

func TestSampleMultiplexedApproximatesDedicated(t *testing.T) {
	// Multiplexing 11 groups over one run should estimate per-event
	// counts within a reasonable factor of a dedicated-batch run.
	groups, _ := Batches(micro.AllEvents())

	mDed := micro.NewMachine(micro.DefaultConfig(), 3)
	gInstr, _ := NewGroup(micro.EvInstructions, micro.EvBranchInstructions, micro.EvMemLoads, micro.EvCPUCycles)
	dedicated := SampleRun(mDed, prog(), gInstr, 8, 40000)

	mMux := micro.NewMachine(micro.DefaultConfig(), 3)
	mux := SampleMultiplexed(mMux, prog(), groups, 8, 40000)
	if len(mux) != 8 {
		t.Fatalf("got %d multiplexed intervals, want 8", len(mux))
	}
	if len(mux[0]) != int(micro.NumEvents) {
		t.Fatalf("multiplexed row has %d values, want %d", len(mux[0]), micro.NumEvents)
	}

	// Compare mean instructions-per-interval: the multiplexed estimate
	// scales a 1/11 observation window by 11, so it is noisy but should
	// land within 40% of the dedicated measurement on average.
	var dSum, mSum float64
	for i := range dedicated {
		dSum += float64(dedicated[i].Values[0])
		mSum += mux[i][int(micro.EvInstructions)]
	}
	ratio := mSum / dSum
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("multiplexed instruction estimate off by ratio %.2f", ratio)
	}
}

func TestAttachReadDelta(t *testing.T) {
	g, _ := NewGroup(micro.EvInstructions)
	m := micro.NewMachine(micro.FastConfig(), 1)
	p := prog().p
	m.Run(&p, 1000)
	ctr := Attach(m, g) // snapshot taken here
	m.Run(&p, 500)
	d1 := ctr.ReadDelta()
	if d1[0] != 500 {
		t.Errorf("first delta = %d, want 500", d1[0])
	}
	d2 := ctr.ReadDelta()
	if d2[0] != 0 {
		t.Errorf("second delta with no progress = %d, want 0", d2[0])
	}
}

func TestCounterWrapReconstruction(t *testing.T) {
	// A narrow 12-bit register wraps every 4096 counts; per-interval
	// deltas must still be exact as long as each interval advances the
	// counter by less than 2^12.
	g, _ := NewGroup(micro.EvInstructions)
	mWide := micro.NewMachine(micro.FastConfig(), 3)
	mNarrow := micro.NewMachine(micro.FastConfig(), 3)
	wide := Attach(mWide, g)
	narrow := AttachWidth(mNarrow, g, 12)
	p := prog().p
	for i := 0; i < 10; i++ {
		mWide.Run(&p, 3000) // 3000 < 4096: at most one wrap per interval
		mNarrow.Run(&p, 3000)
		dw := wide.ReadDelta()
		dn := narrow.ReadDelta()
		if dw[0] != dn[0] {
			t.Fatalf("interval %d: narrow delta %d != wide delta %d", i, dn[0], dw[0])
		}
		if dw[0] != 3000 {
			t.Fatalf("interval %d: delta %d, want 3000", i, dw[0])
		}
	}
}

func TestCounterWrapUndetectedOverflow(t *testing.T) {
	// Advancing a counter by >= 2^width within one interval aliases:
	// the PMU cannot distinguish it. Document the failure mode.
	g, _ := NewGroup(micro.EvInstructions)
	m := micro.NewMachine(micro.FastConfig(), 3)
	ctr := AttachWidth(m, g, 8) // wraps every 256
	p := prog().p
	m.Run(&p, 1000) // ~4 wraps within one read
	d := ctr.ReadDelta()
	if d[0] == 1000 {
		t.Fatal("an 8-bit register cannot represent a 1000-count delta")
	}
	if d[0] != 1000%256 {
		t.Fatalf("aliased delta = %d, want %d", d[0], 1000%256)
	}
}

func TestAttachWidthValidation(t *testing.T) {
	g, _ := NewGroup(micro.EvInstructions)
	m := micro.NewMachine(micro.FastConfig(), 1)
	for _, w := range []uint{0, 64, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d should panic", w)
				}
			}()
			AttachWidth(m, g, w)
		}()
	}
}
