// Package mltest provides synthetic datasets and assertion helpers for
// testing the classifier implementations.
package mltest

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Blobs returns a 2-feature binary dataset of two Gaussian-ish blobs
// whose centres are separated by sep noise standard deviations.
// Linearly separable for sep >~ 4.
func Blobs(n int, sep float64, seed uint64) *dataset.Instances {
	d := dataset.New([]string{"f0", "f1"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(seed)
	for i := 0; i < n; i++ {
		y := i % 2
		cx := 0.0
		if y == 1 {
			cx = sep
		}
		x := []float64{cx + rng.Norm(), cx/2 + rng.Norm()}
		group := fmt.Sprintf("%s-%02d", dataset.BinaryClassNames()[y], i%8)
		_ = d.Add(x, y, group)
	}
	return d
}

// XOR returns the classic nonlinearly-separable XOR problem with
// Gaussian jitter: class 1 iff the two features' signs differ.
func XOR(n int, seed uint64) *dataset.Instances {
	d := dataset.New([]string{"f0", "f1"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		y := a ^ b
		x := []float64{
			float64(a)*4 - 2 + rng.Norm()*0.5,
			float64(b)*4 - 2 + rng.Norm()*0.5,
		}
		group := fmt.Sprintf("%s-%02d", dataset.BinaryClassNames()[y], i%8)
		_ = d.Add(x, y, group)
	}
	return d
}

// Diagonal returns a 2-feature dataset whose true boundary is the line
// f0+f1=0 — a single axis-aligned stump tops out near 75%, while a
// boosted stump committee can approximate the diagonal.
func Diagonal(n int, seed uint64) *dataset.Instances {
	d := dataset.New([]string{"f0", "f1"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(seed)
	for i := 0; i < n; i++ {
		a := rng.Float64()*6 - 3
		b := rng.Float64()*6 - 3
		y := 0
		if a+b > 0 {
			y = 1
		}
		group := fmt.Sprintf("%s-%02d", dataset.BinaryClassNames()[y], i%8)
		_ = d.Add([]float64{a, b}, y, group)
	}
	return d
}

// Bands returns a 1-feature dataset where class 1 occupies the middle
// band of the range — solvable by interval rules but not by a single
// threshold.
func Bands(n int, seed uint64) *dataset.Instances {
	d := dataset.New([]string{"v"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(seed)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		y := 0
		if v > 3.5 && v < 6.5 {
			y = 1
		}
		group := fmt.Sprintf("%s-%02d", dataset.BinaryClassNames()[y], i%8)
		_ = d.Add([]float64{v}, y, group)
	}
	return d
}

// Accuracy computes the fraction of correct predictions of c on d.
func Accuracy(c mlearn.Classifier, d *dataset.Instances) float64 {
	correct := 0
	for i := range d.X {
		if mlearn.Predict(c, d.X[i]) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.NumRows())
}

// AssertAccuracyAbove trains t on train and requires accuracy >= want
// on test.
func AssertAccuracyAbove(t *testing.T, tr mlearn.Trainer, train, test *dataset.Instances, want float64) mlearn.Classifier {
	t.Helper()
	c, err := tr.Train(train, nil)
	if err != nil {
		t.Fatalf("%s: train failed: %v", tr.Name(), err)
	}
	acc := Accuracy(c, test)
	if acc < want {
		t.Errorf("%s: accuracy = %.3f, want >= %.3f", tr.Name(), acc, want)
	}
	return c
}

// AssertValidDistributions checks that c emits well-formed
// distributions on every row of d.
func AssertValidDistributions(t *testing.T, c mlearn.Classifier, d *dataset.Instances) {
	t.Helper()
	for i := range d.X {
		dist := c.Distribution(d.X[i])
		if len(dist) != d.NumClasses() {
			t.Fatalf("distribution has %d entries, want %d", len(dist), d.NumClasses())
		}
		sum := 0.0
		for _, p := range dist {
			if p < -1e-9 || p > 1+1e-9 {
				t.Fatalf("distribution entry %v out of [0,1]", p)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("distribution sums to %v", sum)
		}
	}
}
