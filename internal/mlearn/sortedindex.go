package mlearn

import "sort"

// AttrOrder is the sorted-index view of one decision-tree node's rows:
// for every attribute, the node's row indices ordered ascending by that
// attribute's value (ties broken by row index, so the walk order — and
// therefore every floating-point accumulation during split search — is
// deterministic).
//
// Naive C4.5/REPTree induction re-sorts every attribute at every node,
// an O(A · m log m) cost per node that dominates training. With an
// AttrOrder the training set is sorted once at the root; Split then
// partitions every attribute's list in place in O(A · m), preserving
// sortedness on both sides, and the children alias disjoint subranges
// of the parent's backing arrays — no per-node sort, no per-node index
// allocation.
type AttrOrder struct {
	// Orders[j] holds the node's rows sorted ascending by X[row][j].
	// All lists contain the same row set.
	Orders [][]int32
}

// NewAttrOrder builds the root ordering for the given rows of X. Cost:
// one O(m log m) sort per attribute, backed by a single allocation.
func NewAttrOrder(X [][]float64, rows []int) AttrOrder {
	nA := 0
	if len(X) > 0 {
		nA = len(X[0])
	}
	ao := AttrOrder{Orders: make([][]int32, nA)}
	backing := make([]int32, nA*len(rows))
	for j := 0; j < nA; j++ {
		ord := backing[j*len(rows) : (j+1)*len(rows) : (j+1)*len(rows)]
		for p, r := range rows {
			ord[p] = int32(r)
		}
		j := j
		sort.Slice(ord, func(a, b int) bool {
			va, vb := X[ord[a]][j], X[ord[b]][j]
			if va != vb {
				return va < vb
			}
			return ord[a] < ord[b]
		})
		ao.Orders[j] = ord
	}
	return ao
}

// Len returns the node's row count.
func (ao AttrOrder) Len() int {
	if len(ao.Orders) == 0 {
		return 0
	}
	return len(ao.Orders[0])
}

// Rows returns the node's rows (in attribute-0 order). The slice
// aliases the order's backing array; callers must not mutate it.
func (ao AttrOrder) Rows() []int32 { return ao.Orders[0] }

// Split stably partitions every attribute's order by
// X[row][attr] < threshold: rows routed left keep their relative order
// at the front of each list, rows routed right at the back, so both
// children remain sorted per attribute without re-sorting. The
// partition runs in place — the left child aliases the front of each
// backing array and the right child the back — so the parent's order
// must not be used after Split. scratch must hold at least Len()
// entries and is only used during the call.
func (ao AttrOrder) Split(X [][]float64, attr int, threshold float64, scratch []int32) (left, right AttrOrder, nLeft int) {
	nA := len(ao.Orders)
	left = AttrOrder{Orders: make([][]int32, nA)}
	right = AttrOrder{Orders: make([][]int32, nA)}
	for j := 0; j < nA; j++ {
		ord := ao.Orders[j]
		nl, nr := 0, 0
		for _, r := range ord {
			if X[r][attr] < threshold {
				ord[nl] = r
				nl++
			} else {
				scratch[nr] = r
				nr++
			}
		}
		copy(ord[nl:], scratch[:nr])
		left.Orders[j] = ord[:nl:nl]
		right.Orders[j] = ord[nl:]
		nLeft = nl
	}
	return left, right, nLeft
}
