package smo

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestSMOBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestSMOHardOutput(t *testing.T) {
	train := mltest.Blobs(200, 3, 3)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.X {
		d := c.Distribution(train.X[i])
		if !(d[0] == 0 && d[1] == 1) && !(d[0] == 1 && d[1] == 0) {
			t.Fatal("SMO must emit hard 0/1 distributions (uncalibrated WEKA behaviour)")
		}
	}
}

func TestSMOSupportVectorsSparse(t *testing.T) {
	// On well-separated data, only points near the margin should be
	// support vectors.
	train := mltest.Blobs(400, 8, 5)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	if m.SupportVectors == 0 {
		t.Fatal("no support vectors at all")
	}
	if m.SupportVectors > train.NumRows()/2 {
		t.Errorf("%d/%d support vectors on easily separable data", m.SupportVectors, train.NumRows())
	}
}

func TestSMOMarginGeometry(t *testing.T) {
	train := mltest.Blobs(400, 6, 7)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	if m.Margin([]float64{6, 3}) <= 0 {
		t.Error("margin at class-1 centre should be positive")
	}
	if m.Margin([]float64{0, 0}) >= 0 {
		t.Error("margin at class-0 centre should be negative")
	}
	// Margin magnitude should grow with distance from the boundary.
	near := m.Margin([]float64{3.2, 1.6})
	far := m.Margin([]float64{9, 4.5})
	if far <= near {
		t.Error("margin should increase away from the boundary")
	}
}

func TestSMODeterminism(t *testing.T) {
	train := mltest.Blobs(150, 4, 9)
	a, _ := New().Train(train, nil)
	b, _ := New().Train(train, nil)
	ma, mb := a.(*Model), b.(*Model)
	if ma.Bias != mb.Bias {
		t.Fatal("identical seeds must give identical bias")
	}
	for j := range ma.Weights {
		if ma.Weights[j] != mb.Weights[j] {
			t.Fatal("identical seeds must give identical weights")
		}
	}
}

func TestSMOWeightedBox(t *testing.T) {
	// Upweighting class 1 raises its box constraint; overlap-zone
	// decisions should shift toward class 1.
	train := mltest.Blobs(300, 1.5, 11)
	w := make([]float64, train.NumRows())
	for i := range w {
		if train.Y[i] == 1 {
			w[i] = 10
		} else {
			w[i] = 0.1
		}
	}
	cu, _ := New().Train(train, nil)
	cw, _ := New().Train(train, w)
	p1u, p1w := 0, 0
	for i := range train.X {
		if cu.Distribution(train.X[i])[1] == 1 {
			p1u++
		}
		if cw.Distribution(train.X[i])[1] == 1 {
			p1w++
		}
	}
	if p1w <= p1u {
		t.Errorf("weighted SMO should favour class 1 more: %d vs %d", p1w, p1u)
	}
}
