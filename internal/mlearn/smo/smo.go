// Package smo implements Platt's Sequential Minimal Optimization for a
// linear-kernel soft-margin SVM — WEKA's SMO classifier with its
// default PolyKernel of degree 1 and C=1. Inputs are min-max
// normalised, as WEKA does by default.
//
// WEKA's SMO without logistic calibration emits pseudo-probabilities
// that collapse to a hard 0/1 decision for binary problems; this model
// does the same, which reproduces the paper's observation that SMO's
// AUC (~0.65) trails its accuracy until an ensemble wraps it.
package smo

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Trainer builds linear SMO SVMs.
type Trainer struct {
	// C is the soft-margin complexity constant (WEKA default 1).
	C float64
	// Tol is the KKT violation tolerance (WEKA default 1e-3).
	Tol float64
	// MaxPasses bounds the optimisation sweeps without progress.
	MaxPasses int
	// Seed controls the working-pair selection order.
	Seed uint64
}

// New returns an SMO trainer with WEKA defaults.
func New() *Trainer { return &Trainer{C: 1, Tol: 1e-3, MaxPasses: 8, Seed: 1} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "SMO" }

// Model is a trained linear SVM. The linear kernel lets the dual
// solution collapse to a single weight vector.
type Model struct {
	Scaler  *mlearn.Scaler
	Weights []float64
	Bias    float64
	// SupportVectors is the number of non-zero dual coefficients, kept
	// for diagnostics and the hardware cost model.
	SupportVectors int

	// scratch holds the scaled input during DistributionInto. Unexported
	// so gob checkpoints skip it; lazily sized because decoded models
	// arrive with it nil.
	scratch []float64
}

// Margin returns the signed decision value for x.
func (m *Model) Margin(x []float64) float64 {
	return m.marginWith(x, make([]float64, len(x)))
}

func (m *Model) marginWith(x, buf []float64) float64 {
	u := m.Scaler.ApplyInto(x, buf)
	s := m.Bias
	for j, w := range m.Weights {
		s += w * u[j]
	}
	return s
}

// Distribution implements mlearn.Classifier with WEKA's uncalibrated
// hard output.
func (m *Model) Distribution(x []float64) []float64 {
	out := make([]float64, 2)
	m.DistributionInto(x, out)
	return out
}

// DistributionInto implements mlearn.StreamingClassifier. Reuses the
// model's scaling scratch, so not safe for concurrent calls.
func (m *Model) DistributionInto(x []float64, out []float64) {
	if len(m.scratch) < len(x) {
		m.scratch = make([]float64, len(x))
	}
	if m.marginWith(x, m.scratch[:len(x)]) >= 0 {
		out[0], out[1] = 0, 1
	} else {
		out[0], out[1] = 1, 0
	}
}

// Train implements mlearn.Trainer. Binary classification only.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	scaler := mlearn.FitScaler(d)

	n := d.NumRows()
	nA := d.NumAttrs()
	X := make([][]float64, n)
	y := make([]float64, n)
	// Per-instance box constraint: C scaled by the instance weight, so
	// boosted re-weighting concentrates capacity on hard examples.
	C := make([]float64, n)
	baseC := t.C
	if baseC <= 0 {
		baseC = 1
	}
	for i := 0; i < n; i++ {
		X[i] = scaler.Apply(d.X[i])
		if d.Y[i] == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
		C[i] = baseC * w[i]
	}

	tol := t.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxPasses := t.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 8
	}

	alpha := make([]float64, n)
	wv := make([]float64, nA) // maintained: w = sum alpha_i y_i x_i
	b := 0.0

	f := func(i int) float64 {
		s := b
		for j, v := range X[i] {
			s += wv[j] * v
		}
		return s
	}
	dot := func(a, c []float64) float64 {
		s := 0.0
		for j := range a {
			s += a[j] * c[j]
		}
		return s
	}

	rng := micro.NewRNG(t.Seed ^ 0x2545f491)
	passes := 0
	const maxSweeps = 150 // hard cap on optimisation sweeps
	for sweep := 0; passes < maxPasses && sweep < maxSweeps; sweep++ {
		changed := 0
		for i := 0; i < n; i++ {
			Ei := f(i) - y[i]
			if !((y[i]*Ei < -tol && alpha[i] < C[i]) || (y[i]*Ei > tol && alpha[i] > 0)) {
				continue
			}
			// Pick j != i at random (simplified SMO heuristic).
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			Ej := f(j) - y[j]

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(C[j], C[i]+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-C[i])
				hi = math.Min(C[j], ai+aj)
			}
			if lo >= hi {
				continue
			}
			kii := dot(X[i], X[i])
			kjj := dot(X[j], X[j])
			kij := dot(X[i], X[j])
			eta := 2*kij - kii - kjj
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(Ei-Ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)

			// Update the primal weight vector incrementally.
			di := y[i] * (aiNew - ai)
			dj := y[j] * (ajNew - aj)
			for a := 0; a < nA; a++ {
				wv[a] += di*X[i][a] + dj*X[j][a]
			}

			b1 := b - Ei - y[i]*(aiNew-ai)*kii - y[j]*(ajNew-aj)*kij
			b2 := b - Ej - y[i]*(aiNew-ai)*kij - y[j]*(ajNew-aj)*kjj
			switch {
			case aiNew > 0 && aiNew < C[i]:
				b = b1
			case ajNew > 0 && ajNew < C[j]:
				b = b2
			default:
				b = (b1 + b2) / 2
			}

			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	sv := 0
	for _, a := range alpha {
		if a > 1e-9 {
			sv++
		}
	}
	return &Model{Scaler: scaler, Weights: wv, Bias: b, SupportVectors: sv}, nil
}
