// Package zoo is the classifier registry: it maps the paper's WEKA
// classifier names (BayesNet, J48, JRip, MLP, OneR, REPTree, SGD, SMO)
// to trainer constructors and builds the ensemble variants (AdaBoost,
// Bagging) around them. All experiment harnesses and tools resolve
// detectors through this package so names are consistent everywhere.
package zoo

import (
	"fmt"
	"sort"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/knn"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// Variant selects the learning scheme applied to a base classifier.
type Variant int

const (
	// General is the plain base classifier.
	General Variant = iota
	// Boosted wraps the base in AdaBoost.M1.
	Boosted
	// Bagged wraps the base in Bagging.
	Bagged
)

// String returns the paper's label for the variant.
func (v Variant) String() string {
	switch v {
	case Boosted:
		return "Boosted"
	case Bagged:
		return "Bagging"
	default:
		return "General"
	}
}

// Names returns the eight base classifier names in the paper's order.
func Names() []string {
	return []string{"BayesNet", "J48", "JRip", "MLP", "OneR", "REPTree", "SGD", "SMO"}
}

// BaselineNames returns the extra classifiers implemented as
// related-work baselines (Demme'13 KNN; Ozsoy'15 / Khasawneh'15
// logistic regression). They resolve through New like the studied
// eight but are not part of the paper's grid.
func BaselineNames() []string { return []string{"KNN", "Logistic"} }

// New constructs a fresh base trainer by name. seed parameterises any
// stochastic element (partitions, initial weights, example order).
func New(name string, seed uint64) (mlearn.Trainer, error) {
	switch name {
	case "BayesNet":
		return bayesnet.New(), nil
	case "J48":
		return j48.New(), nil
	case "JRip":
		t := jrip.New()
		t.Seed = seed
		return t, nil
	case "MLP", "MultilayerPerceptron":
		t := mlp.New()
		t.Seed = seed
		return t, nil
	case "OneR":
		return oner.New(), nil
	case "REPTree":
		t := reptree.New()
		t.Seed = seed
		return t, nil
	case "SGD":
		t := sgd.New()
		t.Seed = seed
		return t, nil
	case "SMO":
		t := smo.New()
		t.Seed = seed
		return t, nil
	case "KNN":
		return knn.New(), nil
	case "Logistic":
		t := logistic.New()
		t.Seed = seed
		return t, nil
	}
	return nil, fmt.Errorf("zoo: unknown classifier %q (known: %v)", name, Names())
}

// MustNew is New for statically-known names; it panics on error.
func MustNew(name string, seed uint64) mlearn.Trainer {
	t, err := New(name, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// Options tunes trainer construction beyond the (name, variant, seed)
// triple. The zero value reproduces NewVariant's behaviour.
type Options struct {
	// Iterations applies to ensembles only (0 = WEKA default 10).
	Iterations int
	// Seed drives every stochastic element; per-iteration base seeds
	// derive from it exactly as in sequential training.
	Seed uint64
	// Workers bounds Bagging's concurrent bag training (0 = GOMAXPROCS,
	// 1 = sequential). Any value yields byte-identical models.
	Workers int
	// LegacySplit selects the pre-sorted-index split search in the tree
	// learners (J48, REPTree) — the baseline mode of the perf
	// experiment.
	LegacySplit bool
}

// NewVariant builds the requested scheme around the named base
// classifier. iterations applies to ensembles only (0 = WEKA default
// 10).
func NewVariant(name string, v Variant, iterations int, seed uint64) (mlearn.Trainer, error) {
	return NewVariantOpts(name, v, Options{Iterations: iterations, Seed: seed})
}

// NewVariantOpts is NewVariant with throughput options. Seed derivation
// is unchanged from sequential training, so models are bit-identical
// across worker counts.
func NewVariantOpts(name string, v Variant, opts Options) (mlearn.Trainer, error) {
	seed := opts.Seed
	if _, err := New(name, seed); err != nil {
		return nil, err
	}
	mk := func(s uint64) mlearn.Trainer {
		t := MustNew(name, s)
		if opts.LegacySplit {
			switch bt := t.(type) {
			case *j48.Trainer:
				bt.LegacySplit = true
			case *reptree.Trainer:
				bt.LegacySplit = true
			}
		}
		return t
	}
	base := func(it int) mlearn.Trainer {
		return mk(seed + uint64(it)*0x9e3779b9 + 1)
	}
	switch v {
	case General:
		return mk(seed), nil
	case Boosted:
		t := ensemble.NewAdaBoost(base)
		if opts.Iterations > 0 {
			t.Iterations = opts.Iterations
		}
		t.Seed = seed
		return t, nil
	case Bagged:
		t := ensemble.NewBagging(base)
		if opts.Iterations > 0 {
			t.Iterations = opts.Iterations
		}
		t.Seed = seed
		t.Workers = opts.Workers
		return t, nil
	}
	return nil, fmt.Errorf("zoo: unknown variant %d", v)
}

// Detectors enumerates every (classifier, variant) combination the
// paper studies, sorted by name then variant: 8 general + 8 boosted +
// 8 bagged = 24 detector kinds.
func Detectors() []struct {
	Name    string
	Variant Variant
} {
	names := Names()
	sort.Strings(names)
	var out []struct {
		Name    string
		Variant Variant
	}
	for _, n := range names {
		for _, v := range []Variant{General, Boosted, Bagged} {
			out = append(out, struct {
				Name    string
				Variant Variant
			}{n, v})
		}
	}
	return out
}
