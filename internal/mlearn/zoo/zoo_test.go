package zoo

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

// TestAllClassifiersOnBlobs is the cross-classifier conformance test:
// every general classifier must solve a well-separated 2D problem and
// emit valid distributions; every ensemble variant must do at least as
// well as chance by a wide margin.
func TestAllClassifiersOnBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := MustNew(name, 7)
			c := mltest.AssertAccuracyAbove(t, tr, train, test, 0.9)
			mltest.AssertValidDistributions(t, c, test)
		})
	}
}

func TestEnsembleVariantsOnBlobs(t *testing.T) {
	train := mltest.Blobs(240, 5, 3)
	test := mltest.Blobs(160, 5, 4)
	for _, name := range []string{"OneR", "REPTree", "SGD"} {
		for _, v := range []Variant{Boosted, Bagged} {
			name, v := name, v
			t.Run(name+"-"+v.String(), func(t *testing.T) {
				tr, err := NewVariant(name, v, 10, 11)
				if err != nil {
					t.Fatal(err)
				}
				c := mltest.AssertAccuracyAbove(t, tr, train, test, 0.85)
				mltest.AssertValidDistributions(t, c, test)
			})
		}
	}
}

// TestNonlinearLearnersSolveXOR verifies the tree-family learners (and
// the MLP) handle a nonlinearly separable problem, while the linear
// family cannot — the structural reason the paper's ensembles help
// linear detectors with few HPCs.
func TestNonlinearLearnersSolveXOR(t *testing.T) {
	train := mltest.XOR(400, 5)
	test := mltest.XOR(300, 6)
	for _, name := range []string{"J48", "REPTree", "JRip"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mltest.AssertAccuracyAbove(t, MustNew(name, 3), train, test, 0.85)
		})
	}
	// A linear separator can get at most ~3 of the 4 XOR corners
	// (~75%); the nonlinear learners above must clear that bar.
	for _, name := range []string{"SGD", "SMO"} {
		name := name
		t.Run(name+"-capped", func(t *testing.T) {
			c, err := MustNew(name, 3).Train(train, nil)
			if err != nil {
				t.Fatal(err)
			}
			if acc := mltest.Accuracy(c, test); acc > 0.82 {
				t.Errorf("linear model on XOR = %.3f, expected <= ~0.78 (corner bound)", acc)
			}
		})
	}

	// Boosting the linear learner produces a piecewise ensemble that
	// beats the standalone linear model on XOR.
	boostSGD, err := NewVariant("SGD", Boosted, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	cBoost, err := boostSGD.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := MustNew("SGD", 3).Train(train, nil)
	accBase := mltest.Accuracy(base, test)
	accBoost := mltest.Accuracy(cBoost, test)
	if accBoost < accBase {
		t.Errorf("boosted SGD (%.3f) should not trail plain SGD (%.3f)", accBoost, accBase)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("NotAClassifier", 1); err == nil {
		t.Error("unknown name should fail")
	}
	if _, err := NewVariant("NotAClassifier", Boosted, 10, 1); err == nil {
		t.Error("unknown name should fail for variants")
	}
	if _, err := NewVariant("J48", Variant(99), 10, 1); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on unknown names")
		}
	}()
	MustNew("nope", 1)
}

func TestDetectorsEnumeration(t *testing.T) {
	ds := Detectors()
	if len(ds) != 24 {
		t.Fatalf("detectors = %d, want 24 (8 classifiers x 3 variants)", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		key := d.Name + "/" + d.Variant.String()
		if seen[key] {
			t.Fatalf("duplicate detector %s", key)
		}
		seen[key] = true
	}
}

func TestVariantString(t *testing.T) {
	if General.String() != "General" || Boosted.String() != "Boosted" || Bagged.String() != "Bagging" {
		t.Error("variant names wrong")
	}
}

func TestTrainerNames(t *testing.T) {
	for _, n := range Names() {
		tr := MustNew(n, 1)
		if tr.Name() == "" {
			t.Errorf("%s: empty trainer name", n)
		}
	}
	b, _ := NewVariant("J48", Boosted, 10, 1)
	if b.Name() != "AdaBoostM1+J48" {
		t.Errorf("boosted name = %q", b.Name())
	}
	g, _ := NewVariant("J48", Bagged, 10, 1)
	if g.Name() != "Bagging+J48" {
		t.Errorf("bagged name = %q", g.Name())
	}
}

func TestBaselines(t *testing.T) {
	for _, name := range BaselineNames() {
		tr, err := New(name, 5)
		if err != nil {
			t.Fatalf("%s should resolve: %v", name, err)
		}
		train := mltest.Blobs(200, 5, 1)
		test := mltest.Blobs(150, 5, 2)
		c := mltest.AssertAccuracyAbove(t, tr, train, test, 0.9)
		mltest.AssertValidDistributions(t, c, test)
	}
	// Baselines are not part of the paper's studied eight.
	for _, n := range Names() {
		for _, b := range BaselineNames() {
			if n == b {
				t.Fatalf("%s is listed both as studied and baseline", n)
			}
		}
	}
}
