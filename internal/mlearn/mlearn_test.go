package mlearn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func smallSet(t *testing.T) *dataset.Instances {
	t.Helper()
	d := dataset.New([]string{"a", "b"}, dataset.BinaryClassNames())
	rows := []struct {
		x []float64
		y int
	}{
		{[]float64{0, 1}, 0}, {[]float64{1, 2}, 0}, {[]float64{2, 1}, 0},
		{[]float64{8, 9}, 1}, {[]float64{9, 8}, 1},
	}
	for i, r := range rows {
		_ = d.Add(r.x, r.y, map[int]string{0: "b0", 1: "m0"}[r.y])
		_ = i
	}
	return d
}

func TestCheckTrainable(t *testing.T) {
	d := smallSet(t)
	if err := CheckTrainable(d, nil); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if err := CheckTrainable(nil, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if err := CheckTrainable(d, []float64{1}); err == nil {
		t.Error("wrong weight length should fail")
	}
	if err := CheckTrainable(d, []float64{1, 1, 1, 1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if err := CheckTrainable(d, []float64{0, 0, 0, 0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
	if err := CheckTrainable(d, []float64{1, 1, 1, 1, math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
	empty := dataset.New([]string{"a"}, dataset.BinaryClassNames())
	if err := CheckTrainable(empty, nil); err == nil {
		t.Error("empty set should fail")
	}
}

func TestUniformWeights(t *testing.T) {
	d := smallSet(t)
	w := UniformWeights(d, nil)
	if len(w) != 5 {
		t.Fatal("wrong length")
	}
	for _, v := range w {
		if v != 1 {
			t.Fatal("nil weights should become 1s")
		}
	}
	w2 := UniformWeights(d, []float64{2, 2, 2, 2, 2})
	sum := 0.0
	for _, v := range w2 {
		sum += v
	}
	if math.Abs(sum-5) > 1e-9 {
		t.Errorf("normalised weights sum to %v, want 5", sum)
	}
}

func TestClassDistributionAndMajority(t *testing.T) {
	d := smallSet(t)
	dist := ClassDistribution(d, nil)
	if math.Abs(dist[0]-0.6) > 1e-9 || math.Abs(dist[1]-0.4) > 1e-9 {
		t.Errorf("dist = %v, want [0.6 0.4]", dist)
	}
	if MajorityClass(d, nil) != 0 {
		t.Error("majority should be class 0")
	}
	// Weights flip the majority.
	if MajorityClass(d, []float64{1, 1, 1, 10, 10}) != 1 {
		t.Error("weighted majority should be class 1")
	}
}

func TestResample(t *testing.T) {
	d := smallSet(t)
	s := Resample(d, nil, 100, 7)
	if s.NumRows() != 100 {
		t.Fatalf("resample size = %d, want 100", s.NumRows())
	}
	// With overwhelming weight on row 4, nearly every draw should be it.
	s2 := Resample(d, []float64{0.001, 0.001, 0.001, 0.001, 1000}, 50, 7)
	hits := 0
	for i := range s2.X {
		if s2.Y[i] == 1 && s2.X[i][0] == 9 {
			hits++
		}
	}
	if hits < 45 {
		t.Errorf("weighted resample drew the heavy row only %d/50 times", hits)
	}
	// Determinism.
	a := Resample(d, nil, 20, 3)
	b := Resample(d, nil, 20, 3)
	for i := range a.X {
		if a.X[i][0] != b.X[i][0] {
			t.Fatal("resample not deterministic")
		}
	}
}

func TestEntropy(t *testing.T) {
	if e := Entropy([]float64{5, 5}); math.Abs(e-1) > 1e-12 {
		t.Errorf("Entropy(5,5) = %v, want 1", e)
	}
	if e := Entropy([]float64{10, 0}); e != 0 {
		t.Errorf("pure entropy = %v, want 0", e)
	}
	if e := Entropy(nil); e != 0 {
		t.Error("empty entropy should be 0")
	}
	if e := Entropy([]float64{1, 1, 1, 1}); math.Abs(e-2) > 1e-12 {
		t.Errorf("uniform-4 entropy = %v, want 2", e)
	}
}

func TestScaler(t *testing.T) {
	d := smallSet(t)
	s := FitScaler(d)
	u := s.Apply([]float64{0, 1})
	if u[0] != 0 || u[1] != 0 {
		t.Errorf("min row should map to 0: %v", u)
	}
	u = s.Apply([]float64{9, 9})
	if u[0] != 1 || u[1] != 1 {
		t.Errorf("max row should map to 1: %v", u)
	}
	// Clamping outside the training range.
	u = s.Apply([]float64{-5, 100})
	if u[0] != 0 || u[1] != 1 {
		t.Errorf("out-of-range values should clamp: %v", u)
	}
	// Degenerate attribute maps to 0.5.
	dd := dataset.New([]string{"c"}, dataset.BinaryClassNames())
	_ = dd.Add([]float64{3}, 0, "g0")
	_ = dd.Add([]float64{3}, 1, "g1")
	sc := FitScaler(dd)
	if v := sc.Apply([]float64{3})[0]; v != 0.5 {
		t.Errorf("constant attribute should map to 0.5, got %v", v)
	}
}

func TestProbit(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.75, 0.6744898}, {0.975, 1.959964}, {0.9999, 3.719016},
	}
	for _, c := range cases {
		if got := Probit(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Probit(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Symmetry property.
	if err := quick.Check(func(u float64) bool {
		p := math.Abs(math.Mod(u, 1))
		if p <= 0.001 || p >= 0.999 {
			return true
		}
		return math.Abs(Probit(p)+Probit(1-p)) < 1e-7
	}, nil); err != nil {
		t.Error(err)
	}
	if !math.IsNaN(Probit(0)) || !math.IsNaN(Probit(1)) {
		t.Error("Probit at bounds should be NaN")
	}
}

func TestAddErrs(t *testing.T) {
	// Zero observed errors still predicts some pessimistic errors.
	if e := AddErrs(10, 0, 0.25); e <= 0 {
		t.Errorf("AddErrs(10,0) = %v, want > 0", e)
	}
	// More observed errors -> more predicted extra errors... at least
	// monotone non-crazy behaviour.
	if AddErrs(100, 10, 0.25) <= 0 {
		t.Error("AddErrs(100,10) should be positive")
	}
	// Saturated case.
	if e := AddErrs(10, 10, 0.25); e != 0 {
		t.Errorf("AddErrs(N,e=N) = %v, want 0", e)
	}
	// Lower confidence (stronger pruning) means larger estimates.
	if AddErrs(100, 10, 0.1) <= AddErrs(100, 10, 0.4) {
		t.Error("smaller CF should be more pessimistic")
	}
}

func TestTreeNode(t *testing.T) {
	tree := &TreeNode{
		Attr: 0, Threshold: 5,
		Left: &TreeNode{Leaf: true, Dist: []float64{0.9, 0.1}},
		Right: &TreeNode{
			Attr: 1, Threshold: 2,
			Left:  &TreeNode{Leaf: true, Dist: []float64{0.3, 0.7}},
			Right: &TreeNode{Leaf: true, Dist: []float64{0.1, 0.9}},
		},
	}
	if d := tree.Distribution([]float64{1, 0}); d[0] != 0.9 {
		t.Error("left route failed")
	}
	if d := tree.Distribution([]float64{7, 1}); d[1] != 0.7 {
		t.Error("right-left route failed")
	}
	if d := tree.Distribution([]float64{7, 3}); d[1] != 0.9 {
		t.Error("right-right route failed")
	}
	if tree.Depth() != 2 {
		t.Errorf("depth = %d, want 2", tree.Depth())
	}
	internal, leaves := tree.Count()
	if internal != 2 || leaves != 3 {
		t.Errorf("count = (%d,%d), want (2,3)", internal, leaves)
	}
}

func TestFitMDLSeparable(t *testing.T) {
	// Attribute with a clean class boundary at 5 should get one cut
	// near 5; a noise attribute should get no cuts.
	d := dataset.New([]string{"signal", "noise"}, dataset.BinaryClassNames())
	for i := 0; i < 100; i++ {
		y := i % 2
		v := float64(i%50) / 10
		if y == 1 {
			v += 5
		}
		noise := float64((i*37)%100) / 10
		_ = d.Add([]float64{v, noise}, y, map[int]string{0: "b", 1: "m"}[y])
	}
	dz := FitMDL(d, UniformWeights(d, nil))
	if len(dz.Cuts[0]) == 0 {
		t.Fatal("signal attribute got no cuts")
	}
	foundBoundary := false
	for _, c := range dz.Cuts[0] {
		if c > 4.5 && c < 5.5 {
			foundBoundary = true
		}
	}
	if !foundBoundary {
		t.Errorf("no cut near the class boundary: %v", dz.Cuts[0])
	}
	if len(dz.Cuts[1]) > 2 {
		t.Errorf("noise attribute got %d cuts, want few/none", len(dz.Cuts[1]))
	}
	// Bin mapping is monotone and in range.
	for v := -1.0; v < 12; v += 0.5 {
		b := dz.Bin(0, v)
		if b < 0 || b >= dz.Bins(0) {
			t.Fatalf("bin %d out of range for value %v", b, v)
		}
	}
}

func TestPredictTieBreak(t *testing.T) {
	c := constClassifier{dist: []float64{0.5, 0.5}}
	if Predict(c, nil) != 0 {
		t.Error("ties should break toward class 0")
	}
	if Score(c, nil) != 0.5 {
		t.Error("Score should return P(class 1)")
	}
	if Score(constClassifier{dist: []float64{1}}, nil) != 0 {
		t.Error("degenerate single-class distribution should score 0")
	}
}

type constClassifier struct{ dist []float64 }

func (c constClassifier) Distribution([]float64) []float64 { return c.dist }
