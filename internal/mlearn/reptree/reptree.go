// Package reptree implements the reduced-error-pruning tree (WEKA's
// REPTree): a fast decision tree grown with plain information gain on
// a grow subset, then pruned bottom-up against a held-out prune subset
// (reduced-error pruning, Quinlan 1987). WEKA's default uses 3 folds —
// two thirds grow the tree, one third prunes it.
package reptree

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Trainer builds REPTree models.
type Trainer struct {
	// MinLeaf is the minimum weighted instance count per leaf (WEKA
	// minNum, default 2).
	MinLeaf float64
	// Folds controls the grow/prune split: 1/Folds of the data prunes
	// (WEKA numFolds, default 3). Folds<=1 disables pruning.
	Folds int
	// MaxDepth bounds tree depth (0 = unlimited, WEKA default -1).
	MaxDepth int
	// Seed controls the grow/prune partition.
	Seed uint64
	// LegacySplit selects the original per-node gather-and-sort split
	// search instead of the sorted-index engine. Kept as the baseline
	// for the perf experiment and for A/B equivalence tests.
	LegacySplit bool
}

// New returns a REPTree trainer with WEKA defaults.
func New() *Trainer { return &Trainer{MinLeaf: 2, Folds: 3, Seed: 1} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "REPTree" }

// Model is a trained REPTree.
type Model struct {
	Root *mlearn.TreeNode
}

// Distribution implements mlearn.Classifier.
func (m *Model) Distribution(x []float64) []float64 { return m.Root.Distribution(x) }

// Size returns (internal nodes, leaves).
func (m *Model) Size() (internal, leaves int) { return m.Root.Count() }

// Depth returns the tree depth.
func (m *Model) Depth() int { return m.Root.Depth() }

// Train implements mlearn.Trainer.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}

	n := d.NumRows()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}

	growIdx, pruneIdx := all, []int(nil)
	if t.Folds > 1 && n >= 2*t.Folds {
		// Deterministic shuffle, last 1/Folds prunes.
		perm := append([]int(nil), all...)
		rng := micro.NewRNG(t.Seed ^ 0x9e3779b97f4a7c15)
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		cut := n - n/t.Folds
		growIdx, pruneIdx = perm[:cut], perm[cut:]
	}

	g := &grower{d: d, w: w, k: d.NumClasses(), maxDepth: t.MaxDepth, minLeaf: minLeaf}
	var root *mlearn.TreeNode
	if t.LegacySplit {
		root = g.grow(growIdx, 0)
	} else {
		ao := mlearn.NewAttrOrder(d.X, growIdx)
		root = g.growSorted(ao, 0, make([]int32, len(growIdx)))
	}
	if len(pruneIdx) > 0 {
		repPrune(g, root, pruneIdx)
	}
	return &Model{Root: root}, nil
}

type grower struct {
	d        *dataset.Instances
	w        []float64
	k        int
	maxDepth int
	minLeaf  float64
}

func (g *grower) classCounts(idx []int) []float64 {
	counts := make([]float64, g.k)
	for _, i := range idx {
		counts[g.d.Y[i]] += g.w[i]
	}
	return counts
}

func leaf(counts []float64) *mlearn.TreeNode {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	dist := make([]float64, len(counts))
	if total > 0 {
		for i, c := range counts {
			dist[i] = c / total
		}
	} else {
		for i := range dist {
			dist[i] = 1 / float64(len(dist))
		}
	}
	return &mlearn.TreeNode{Leaf: true, Dist: dist}
}

func (g *grower) grow(idx []int, depth int) *mlearn.TreeNode {
	counts := g.classCounts(idx)
	total, nonZero := 0.0, 0
	for _, c := range counts {
		total += c
		if c > 0 {
			nonZero++
		}
	}
	if nonZero <= 1 || total < 2*g.minLeaf || (g.maxDepth > 0 && depth >= g.maxDepth) {
		return leaf(counts)
	}

	attr, threshold, ok := g.bestGainSplit(idx, counts)
	if !ok {
		return leaf(counts)
	}
	var left, right []int
	for _, i := range idx {
		if g.d.X[i][attr] < threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leaf(counts)
	}
	return &mlearn.TreeNode{
		Attr:      attr,
		Threshold: threshold,
		Left:      g.grow(left, depth+1),
		Right:     g.grow(right, depth+1),
	}
}

func (g *grower) classCounts32(rows []int32) []float64 {
	counts := make([]float64, g.k)
	for _, i := range rows {
		counts[g.d.Y[i]] += g.w[i]
	}
	return counts
}

// growSorted is grow on the sorted-index engine: the per-attribute row
// orders built once for the grow subset are partitioned — never
// re-sorted — on the way down, so split search at each node is a
// linear walk.
func (g *grower) growSorted(ao mlearn.AttrOrder, depth int, scratch []int32) *mlearn.TreeNode {
	counts := g.classCounts32(ao.Rows())
	total, nonZero := 0.0, 0
	for _, c := range counts {
		total += c
		if c > 0 {
			nonZero++
		}
	}
	if nonZero <= 1 || total < 2*g.minLeaf || (g.maxDepth > 0 && depth >= g.maxDepth) {
		return leaf(counts)
	}

	attr, threshold, ok := g.bestGainSplitSorted(ao, counts)
	if !ok {
		return leaf(counts)
	}
	left, right, nLeft := ao.Split(g.d.X, attr, threshold, scratch)
	if nLeft == 0 || right.Len() == 0 {
		return leaf(counts)
	}
	return &mlearn.TreeNode{
		Attr:      attr,
		Threshold: threshold,
		Left:      g.growSorted(left, depth+1, scratch),
		Right:     g.growSorted(right, depth+1, scratch),
	}
}

// bestGainSplitSorted is bestGainSplit walking each attribute's
// pre-sorted row order instead of gathering and sorting the node's
// values; the count buffers are reused across attributes.
func (g *grower) bestGainSplitSorted(ao mlearn.AttrOrder, parentCounts []float64) (int, float64, bool) {
	parentEnt := mlearn.Entropy(parentCounts)
	totalW := 0.0
	for _, c := range parentCounts {
		totalW += c
	}
	left := make([]float64, g.k)
	right := make([]float64, g.k)

	bestGain, bestAttr, bestTh := 1e-12, -1, 0.0
	for j := range ao.Orders {
		ord := ao.Orders[j]
		for c := range left {
			left[c] = 0
		}
		copy(right, parentCounts)
		leftW := 0.0
		for p := 0; p < len(ord)-1; p++ {
			i := ord[p]
			left[g.d.Y[i]] += g.w[i]
			right[g.d.Y[i]] -= g.w[i]
			leftW += g.w[i]
			v, next := g.d.X[i][j], g.d.X[ord[p+1]][j]
			if next <= v {
				continue
			}
			rightW := totalW - leftW
			if leftW < g.minLeaf || rightW < g.minLeaf {
				continue
			}
			ent := (leftW*mlearn.Entropy(left) + rightW*mlearn.Entropy(right)) / totalW
			if gain := parentEnt - ent; gain > bestGain {
				bestGain, bestAttr = gain, j
				bestTh = (v + next) / 2
			}
		}
	}
	return bestAttr, bestTh, bestAttr >= 0
}

// bestGainSplit maximises plain information gain (REPTree does not use
// the gain-ratio correction).
func (g *grower) bestGainSplit(idx []int, parentCounts []float64) (int, float64, bool) {
	parentEnt := mlearn.Entropy(parentCounts)
	totalW := 0.0
	for _, c := range parentCounts {
		totalW += c
	}
	type rec struct {
		v float64
		y int
		w float64
	}
	vals := make([]rec, len(idx))

	bestGain, bestAttr, bestTh := 1e-12, -1, 0.0
	for j := 0; j < g.d.NumAttrs(); j++ {
		for p, i := range idx {
			vals[p] = rec{v: g.d.X[i][j], y: g.d.Y[i], w: g.w[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		left := make([]float64, g.k)
		right := append([]float64(nil), parentCounts...)
		leftW := 0.0
		for p := 0; p < len(vals)-1; p++ {
			left[vals[p].y] += vals[p].w
			right[vals[p].y] -= vals[p].w
			leftW += vals[p].w
			if vals[p+1].v <= vals[p].v {
				continue
			}
			rightW := totalW - leftW
			if leftW < g.minLeaf || rightW < g.minLeaf {
				continue
			}
			ent := (leftW*mlearn.Entropy(left) + rightW*mlearn.Entropy(right)) / totalW
			if gain := parentEnt - ent; gain > bestGain {
				bestGain, bestAttr = gain, j
				bestTh = (vals[p].v + vals[p+1].v) / 2
			}
		}
	}
	return bestAttr, bestTh, bestAttr >= 0
}

// repPrune performs reduced-error pruning: replace a subtree with a
// leaf whenever the leaf makes no more errors on the prune set than the
// subtree does. Returns the subtree's prune-set error after pruning.
func repPrune(g *grower, n *mlearn.TreeNode, pruneIdx []int) float64 {
	counts := g.classCounts(pruneIdx)
	if n.Leaf {
		return errorsAsLeaf(g, n.Dist, counts)
	}
	var left, right []int
	for _, i := range pruneIdx {
		if g.d.X[i][n.Attr] < n.Threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	subErr := repPrune(g, n.Left, left) + repPrune(g, n.Right, right)

	// No prune evidence at this node: keep the grown subtree.
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return subErr
	}

	// Candidate leaf: majority class over the prune set at this node.
	leafNode := leaf(counts)
	leafErr := errorsAsLeaf(g, leafNode.Dist, counts)
	if leafErr <= subErr {
		*n = *leafNode
		return leafErr
	}
	return subErr
}

// errorsAsLeaf counts the weighted prune-set errors a leaf with the
// given distribution commits against the observed class counts.
func errorsAsLeaf(g *grower, dist []float64, counts []float64) float64 {
	pred, best := 0, -1.0
	for c, p := range dist {
		if p > best {
			pred, best = c, p
		}
	}
	e := 0.0
	for c, cw := range counts {
		if c != pred {
			e += cw
		}
	}
	return e
}
