package reptree

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestREPTreeXOR(t *testing.T) {
	train := mltest.XOR(500, 1)
	test := mltest.XOR(300, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.85)
	mltest.AssertValidDistributions(t, c, test)
}

func TestREPTreePruningShrinks(t *testing.T) {
	train := mltest.Blobs(500, 2, 3)
	test := mltest.Blobs(300, 2, 4)

	noPrune := &Trainer{MinLeaf: 2, Folds: 1, Seed: 1}
	withPrune := New()

	cn, err := noPrune.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := withPrune.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, ln := cn.(*Model).Size()
	ip, lp := cp.(*Model).Size()
	if ip+lp > in+ln {
		t.Errorf("pruned tree (%d nodes) larger than unpruned (%d)", ip+lp, in+ln)
	}
	if acc := mltest.Accuracy(cp, test); acc < 0.75 {
		t.Errorf("pruned accuracy = %.3f", acc)
	}
}

func TestREPTreeMaxDepth(t *testing.T) {
	train := mltest.XOR(300, 5)
	tr := &Trainer{MinLeaf: 2, Folds: 1, MaxDepth: 1, Seed: 1}
	c, err := tr.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.(*Model).Depth(); d > 1 {
		t.Errorf("depth = %d, want <= 1", d)
	}
}

func TestREPTreeDeterministicPerSeed(t *testing.T) {
	train := mltest.Blobs(300, 3, 9)
	a, _ := New().Train(train, nil)
	b, _ := New().Train(train, nil)
	for i := range train.X {
		da := a.Distribution(train.X[i])
		db := b.Distribution(train.X[i])
		for c := range da {
			if da[c] != db[c] {
				t.Fatal("same seed should give identical trees")
			}
		}
	}
}

func TestREPTreeTinySets(t *testing.T) {
	// Sets too small to partition must still train (pruning skipped).
	train := mltest.Blobs(5, 6, 1)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	mltest.AssertValidDistributions(t, c, train)
}
