package mlp

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestMLPBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestMLPSolvesXORWithEnoughHidden(t *testing.T) {
	train := mltest.XOR(400, 1)
	test := mltest.XOR(300, 2)
	tr := New()
	tr.Hidden = 6
	tr.Epochs = 400
	c := mltest.AssertAccuracyAbove(t, tr, train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestMLPArchitectureDefaults(t *testing.T) {
	train := mltest.Blobs(100, 5, 3)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	// WEKA "a" heuristic: (2 attrs + 2 classes)/2 = 2.
	if m.Hidden() != 2 {
		t.Errorf("hidden = %d, want 2 ((attrs+classes)/2)", m.Hidden())
	}
	if m.Inputs() != 2 || m.Outputs() != 2 {
		t.Errorf("shape = (%d in, %d out), want (2,2)", m.Inputs(), m.Outputs())
	}
}

func TestMLPGradedOutput(t *testing.T) {
	train := mltest.Blobs(300, 2, 5) // overlapping
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	graded := 0
	for i := range train.X {
		p := c.Distribution(train.X[i])[1]
		if p > 0.05 && p < 0.95 {
			graded++
		}
	}
	if graded == 0 {
		t.Error("MLP on overlapping data should emit some graded probabilities")
	}
}

func TestMLPDeterminism(t *testing.T) {
	train := mltest.Blobs(150, 4, 7)
	a, _ := New().Train(train, nil)
	b, _ := New().Train(train, nil)
	for i := range train.X {
		pa := a.Distribution(train.X[i])
		pb := b.Distribution(train.X[i])
		if pa[0] != pb[0] {
			t.Fatal("identical seeds must give identical networks")
		}
	}
}

func TestMLPWeightsEmphasis(t *testing.T) {
	train := mltest.Blobs(300, 1.2, 9) // heavy overlap
	w := make([]float64, train.NumRows())
	for i := range w {
		if train.Y[i] == 1 {
			w[i] = 15
		} else {
			w[i] = 0.05
		}
	}
	cu, _ := New().Train(train, nil)
	cw, _ := New().Train(train, w)
	p1u, p1w := 0, 0
	for i := range train.X {
		if cu.Distribution(train.X[i])[1] > 0.5 {
			p1u++
		}
		if cw.Distribution(train.X[i])[1] > 0.5 {
			p1w++
		}
	}
	if p1w <= p1u {
		t.Errorf("class-1 weighting should increase class-1 predictions: %d vs %d", p1w, p1u)
	}
}
