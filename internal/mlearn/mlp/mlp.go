// Package mlp implements a multilayer perceptron matching WEKA's
// MultilayerPerceptron defaults: one hidden layer with
// (attributes+classes)/2 sigmoid units, one sigmoid output unit per
// class trained on squared error with backpropagation, learning rate
// 0.3, momentum 0.2, and min-max input normalisation. Instance weights
// scale each example's gradient so the model composes with AdaBoost.
package mlp

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Trainer builds MLP models.
type Trainer struct {
	// Hidden is the hidden-layer width; 0 means WEKA's "a" heuristic,
	// (attributes+classes)/2.
	Hidden int
	// LearningRate (WEKA default 0.3).
	LearningRate float64
	// Momentum (WEKA default 0.2).
	Momentum float64
	// Epochs of training (WEKA default 500; this implementation
	// defaults to 200, which converges on the HPC datasets and keeps
	// the 84-model Figure 3 sweep tractable).
	Epochs int
	// Seed controls weight initialisation and example order.
	Seed uint64
}

// New returns an MLP trainer with the defaults above.
func New() *Trainer {
	return &Trainer{LearningRate: 0.3, Momentum: 0.2, Epochs: 200, Seed: 1}
}

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "MultilayerPerceptron" }

// Model is a trained one-hidden-layer perceptron.
type Model struct {
	Scaler *mlearn.Scaler
	// W1[h][j] weights input j into hidden unit h; B1[h] is its bias.
	W1 [][]float64
	B1 []float64
	// W2[c][h] weights hidden unit h into output c; B2[c] is its bias.
	W2 [][]float64
	B2 []float64

	// scratchU/scratchH hold the scaled input and hidden activations
	// during DistributionInto. Unexported so gob checkpoints skip them;
	// lazily sized because decoded models arrive with them nil.
	scratchU []float64
	scratchH []float64
}

// Hidden returns the hidden layer width.
func (m *Model) Hidden() int { return len(m.B1) }

// Inputs returns the input width.
func (m *Model) Inputs() int {
	if len(m.W1) == 0 {
		return 0
	}
	return len(m.W1[0])
}

// Outputs returns the output width (number of classes).
func (m *Model) Outputs() int { return len(m.B2) }

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// forward computes hidden activations and outputs for a normalised
// input.
func (m *Model) forward(u []float64) (hidden, out []float64) {
	hidden = make([]float64, len(m.B1))
	out = make([]float64, len(m.B2))
	m.forwardInto(u, hidden, out)
	return hidden, out
}

// forwardInto is forward writing into caller-owned buffers.
func (m *Model) forwardInto(u, hidden, out []float64) {
	for h := range hidden {
		s := m.B1[h]
		for j, v := range u {
			s += m.W1[h][j] * v
		}
		hidden[h] = sigmoid(s)
	}
	for c := range out {
		s := m.B2[c]
		for h, v := range hidden {
			s += m.W2[c][h] * v
		}
		out[c] = sigmoid(s)
	}
}

// Distribution implements mlearn.Classifier: per-class sigmoid outputs
// normalised to sum to one (WEKA's behaviour).
func (m *Model) Distribution(x []float64) []float64 {
	out := make([]float64, len(m.B2))
	m.DistributionInto(x, out)
	return out
}

// DistributionInto implements mlearn.StreamingClassifier. Reuses the
// model's activation scratch, so not safe for concurrent calls.
func (m *Model) DistributionInto(x []float64, out []float64) {
	if len(m.scratchU) < len(x) {
		m.scratchU = make([]float64, len(x))
	}
	if len(m.scratchH) != len(m.B1) {
		m.scratchH = make([]float64, len(m.B1))
	}
	u := m.Scaler.ApplyInto(x, m.scratchU[:len(x)])
	m.forwardInto(u, m.scratchH, out)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Train implements mlearn.Trainer.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	scaler := mlearn.FitScaler(d)

	n := d.NumRows()
	nA := d.NumAttrs()
	k := d.NumClasses()
	hiddenN := t.Hidden
	if hiddenN <= 0 {
		hiddenN = (nA + k) / 2
		if hiddenN < 2 {
			hiddenN = 2
		}
	}
	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.3
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 200
	}

	X := make([][]float64, n)
	for i := range X {
		X[i] = scaler.Apply(d.X[i])
	}
	// Normalise instance weights to mean 1 so the effective learning
	// rate is insensitive to the weight scale.
	meanW := 0.0
	for _, v := range w {
		meanW += v
	}
	meanW /= float64(n)
	for i := range w {
		w[i] /= meanW
	}

	rng := micro.NewRNG(t.Seed ^ 0x6a09e667)
	m := &Model{
		Scaler: scaler,
		W1:     make([][]float64, hiddenN),
		B1:     make([]float64, hiddenN),
		W2:     make([][]float64, k),
		B2:     make([]float64, k),
	}
	initRange := 0.5
	for h := range m.W1 {
		m.W1[h] = make([]float64, nA)
		for j := range m.W1[h] {
			m.W1[h][j] = (rng.Float64()*2 - 1) * initRange
		}
		m.B1[h] = (rng.Float64()*2 - 1) * initRange
	}
	for c := range m.W2 {
		m.W2[c] = make([]float64, hiddenN)
		for h := range m.W2[c] {
			m.W2[c][h] = (rng.Float64()*2 - 1) * initRange
		}
		m.B2[c] = (rng.Float64()*2 - 1) * initRange
	}

	// Momentum buffers.
	dW1 := make([][]float64, hiddenN)
	for h := range dW1 {
		dW1[h] = make([]float64, nA)
	}
	dB1 := make([]float64, hiddenN)
	dW2 := make([][]float64, k)
	for c := range dW2 {
		dW2[c] = make([]float64, hiddenN)
	}
	dB2 := make([]float64, k)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	target := make([]float64, k)
	deltaOut := make([]float64, k)
	deltaHid := make([]float64, hiddenN)

	for e := 0; e < epochs; e++ {
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			hid, out := m.forward(X[i])
			for c := range target {
				target[c] = 0
			}
			target[d.Y[i]] = 1

			for c := range out {
				err := target[c] - out[c]
				deltaOut[c] = err * out[c] * (1 - out[c]) * w[i]
			}
			for h := range hid {
				s := 0.0
				for c := range deltaOut {
					s += deltaOut[c] * m.W2[c][h]
				}
				deltaHid[h] = s * hid[h] * (1 - hid[h])
			}
			for c := range m.W2 {
				for h := range m.W2[c] {
					dW2[c][h] = lr*deltaOut[c]*hid[h] + t.Momentum*dW2[c][h]
					m.W2[c][h] += dW2[c][h]
				}
				dB2[c] = lr*deltaOut[c] + t.Momentum*dB2[c]
				m.B2[c] += dB2[c]
			}
			for h := range m.W1 {
				for j := range m.W1[h] {
					dW1[h][j] = lr*deltaHid[h]*X[i][j] + t.Momentum*dW1[h][j]
					m.W1[h][j] += dW1[h][j]
				}
				dB1[h] = lr*deltaHid[h] + t.Momentum*dB1[h]
				m.B1[h] += dB1[h]
			}
		}
	}
	return m, nil
}
