package oner

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mlearn"
	"repro/internal/mlearn/mltest"
)

func TestOneRPicksInformativeAttribute(t *testing.T) {
	// Attribute 0 separates the classes; attribute 1 is junk.
	d := dataset.New([]string{"signal", "junk"}, dataset.BinaryClassNames())
	for i := 0; i < 100; i++ {
		y := i % 2
		sig := float64(y*10) + float64(i%5)
		junk := float64(i % 7)
		_ = d.Add([]float64{sig, junk}, y, map[int]string{0: "b", 1: "m"}[y])
	}
	c, err := New().Train(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	if m.Attr != 0 {
		t.Errorf("OneR chose attribute %d (%s), want 0 (signal)", m.Attr, m.AttrName)
	}
	if m.AttrName != "signal" {
		t.Errorf("AttrName = %q", m.AttrName)
	}
	if acc := mltest.Accuracy(c, d); acc < 0.95 {
		t.Errorf("train accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestOneRSolvesBands(t *testing.T) {
	// The middle-band problem needs multiple intervals on one
	// attribute — precisely OneR's hypothesis space.
	train := mltest.Bands(400, 1)
	test := mltest.Bands(300, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	m := c.(*Model)
	if len(m.Thresholds) < 2 {
		t.Errorf("band problem needs >= 2 thresholds, got %d", len(m.Thresholds))
	}
	mltest.AssertValidDistributions(t, c, test)
}

func TestOneRHardOutput(t *testing.T) {
	train := mltest.Blobs(100, 5, 1)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.X {
		dist := c.Distribution(train.X[i])
		if dist[0] != 0 && dist[0] != 1 {
			t.Fatal("OneR must emit one-hot distributions (WEKA behaviour)")
		}
	}
}

func TestOneRMinBucketControlsGranularity(t *testing.T) {
	train := mltest.Bands(300, 3)
	coarse := &Trainer{MinBucket: 100}
	fine := &Trainer{MinBucket: 3}
	cc, _ := coarse.Train(train, nil)
	cf, _ := fine.Train(train, nil)
	if len(cc.(*Model).Thresholds) > len(cf.(*Model).Thresholds) {
		t.Error("larger MinBucket should produce no more intervals")
	}
}

func TestOneRWeightsShiftTheRule(t *testing.T) {
	// Two attributes, each predictive for a different half of the
	// data; upweighting one half should steer attribute choice.
	d := dataset.New([]string{"a", "b"}, dataset.BinaryClassNames())
	// First 40 rows: attribute a separates. Last 40: attribute b does.
	for i := 0; i < 40; i++ {
		y := i % 2
		_ = d.Add([]float64{float64(y), 0.5}, y, map[int]string{0: "b", 1: "m"}[y])
	}
	for i := 0; i < 40; i++ {
		y := i % 2
		_ = d.Add([]float64{0.5, float64(y)}, y, map[int]string{0: "b", 1: "m"}[y])
	}
	wA := make([]float64, 80)
	for i := range wA {
		if i < 40 {
			wA[i] = 10
		} else {
			wA[i] = 0.1
		}
	}
	cA, err := New().Train(d, wA)
	if err != nil {
		t.Fatal(err)
	}
	if cA.(*Model).Attr != 0 {
		t.Errorf("upweighting first half should pick attr 0, got %d", cA.(*Model).Attr)
	}

	wB := make([]float64, 80)
	for i := range wB {
		if i < 40 {
			wB[i] = 0.1
		} else {
			wB[i] = 10
		}
	}
	cB, err := New().Train(d, wB)
	if err != nil {
		t.Fatal(err)
	}
	if cB.(*Model).Attr != 1 {
		t.Errorf("upweighting second half should pick attr 1, got %d", cB.(*Model).Attr)
	}
}

func TestOneRRejectsBadInput(t *testing.T) {
	var tr mlearn.Trainer = New()
	if _, err := tr.Train(nil, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	d := mltest.Blobs(10, 5, 1)
	if _, err := tr.Train(d, []float64{1}); err == nil {
		t.Error("mismatched weights should fail")
	}
	if tr.Name() != "OneR" {
		t.Error("name wrong")
	}
}
