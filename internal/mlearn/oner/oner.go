// Package oner implements the OneR (1R) rule learner (Holte 1993; WEKA
// classifiers.rules.OneR): for every attribute it builds a one-level
// rule by bucketing the sorted attribute values into intervals whose
// majority class has at least MinBucket (weighted) instances, then
// keeps the single attribute whose rule has the lowest training error.
//
// The paper observes that OneR's accuracy is flat across HPC budgets
// because it only ever consumes one counter (branch_instructions, the
// top-ranked feature) — a behaviour this implementation reproduces as
// long as that feature is in the selected set.
package oner

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// Trainer builds OneR models.
type Trainer struct {
	// MinBucket is the minimum weighted count of the optimal class per
	// interval (WEKA's minBucketSize, default 6).
	MinBucket float64
}

// New returns a OneR trainer with WEKA defaults.
func New() *Trainer { return &Trainer{MinBucket: 6} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "OneR" }

// Model is a trained OneR rule: thresholds split the chosen attribute
// into len(Classes) intervals; interval i (values < Thresholds[i], or
// the open tail for the last) predicts Classes[i].
type Model struct {
	Attr       int       // chosen attribute column
	AttrName   string    // its name
	Thresholds []float64 // ascending cut points, len = len(Classes)-1
	Classes    []int     // majority class per interval
	NumClasses int
	TrainError float64 // weighted training error of the rule
}

// Distribution implements mlearn.Classifier. OneR is a hard rule
// learner: it returns a one-hot distribution, which (as with WEKA) caps
// its standalone AUC.
func (m *Model) Distribution(x []float64) []float64 {
	dist := make([]float64, m.NumClasses)
	dist[m.predict(x[m.Attr])] = 1
	return dist
}

// DistributionInto implements mlearn.StreamingClassifier (one-hot,
// stateless, safe for concurrent callers).
func (m *Model) DistributionInto(x []float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	out[m.predict(x[m.Attr])] = 1
}

func (m *Model) predict(v float64) int {
	for i, th := range m.Thresholds {
		if v < th {
			return m.Classes[i]
		}
	}
	return m.Classes[len(m.Classes)-1]
}

// Train implements mlearn.Trainer.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	minBucket := t.MinBucket
	if minBucket <= 0 {
		minBucket = 6
	}

	best := (*Model)(nil)
	for j := 0; j < d.NumAttrs(); j++ {
		m := buildRule(d, w, j, minBucket)
		if best == nil || m.TrainError < best.TrainError {
			best = m
		}
	}
	best.AttrName = d.Attributes[best.Attr].Name
	return best, nil
}

type valueWeight struct {
	v float64
	y int
	w float64
}

// buildRule constructs the 1R rule for attribute j: sort by value,
// sweep forming intervals that close once their majority class holds at
// least minBucket weight and the next value differs, then merge
// adjacent intervals that predict the same class.
func buildRule(d *dataset.Instances, w []float64, j int, minBucket float64) *Model {
	n := d.NumRows()
	vals := make([]valueWeight, n)
	for i := 0; i < n; i++ {
		vals[i] = valueWeight{v: d.X[i][j], y: d.Y[i], w: w[i]}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

	k := d.NumClasses()
	var thresholds []float64
	var classes []int
	counts := make([]float64, k)

	flush := func() {
		maxC, maxW := 0, -1.0
		for c, cw := range counts {
			if cw > maxW {
				maxC, maxW = c, cw
			}
		}
		classes = append(classes, maxC)
		for c := range counts {
			counts[c] = 0
		}
	}

	for i := 0; i < n; i++ {
		counts[vals[i].y] += vals[i].w
		// Close the interval when the majority class weight reaches
		// minBucket and the next value is distinct (cannot split equal
		// values across intervals).
		if i == n-1 {
			break
		}
		maxW := 0.0
		for _, cw := range counts {
			if cw > maxW {
				maxW = cw
			}
		}
		if maxW >= minBucket && vals[i+1].v > vals[i].v {
			thresholds = append(thresholds, (vals[i].v+vals[i+1].v)/2)
			flush()
		}
	}
	flush()

	// Merge adjacent intervals with equal predictions.
	mThresh := thresholds[:0]
	mClasses := classes[:1]
	for i := 1; i < len(classes); i++ {
		if classes[i] != mClasses[len(mClasses)-1] {
			mThresh = append(mThresh, thresholds[i-1])
			mClasses = append(mClasses, classes[i])
		}
	}

	m := &Model{Attr: j, Thresholds: mThresh, Classes: mClasses, NumClasses: k}

	// Weighted training error.
	errW, total := 0.0, 0.0
	for i := 0; i < n; i++ {
		total += w[i]
		if m.predict(d.X[i][j]) != d.Y[i] {
			errW += w[i]
		}
	}
	if total > 0 {
		m.TrainError = errW / total
	} else {
		m.TrainError = math.Inf(1)
	}
	return m
}
