package logistic

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestLogisticBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestLogisticCalibratedOutput(t *testing.T) {
	// Unlike SMO/SGD, logistic regression must emit graded
	// probabilities — high near the class-1 centre, low near class-0,
	// intermediate at the midpoint.
	train := mltest.Blobs(400, 4, 3)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	pHigh := m.Probability([]float64{4, 2})
	pLow := m.Probability([]float64{0, 0})
	pMid := m.Probability([]float64{2, 1})
	if pHigh < 0.8 {
		t.Errorf("P at class-1 centre = %.3f, want high", pHigh)
	}
	if pLow > 0.2 {
		t.Errorf("P at class-0 centre = %.3f, want low", pLow)
	}
	if pMid <= pLow || pMid >= pHigh {
		t.Errorf("midpoint probability %.3f not between %.3f and %.3f", pMid, pLow, pHigh)
	}
}

func TestLogisticLinearCap(t *testing.T) {
	// XOR caps any linear model around the 3-corner bound.
	train := mltest.XOR(400, 5)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c, train); acc > 0.82 {
		t.Errorf("linear model on XOR = %.3f, expected <= ~0.78", acc)
	}
}

func TestLogisticWeights(t *testing.T) {
	train := mltest.Blobs(300, 1.5, 7)
	w := make([]float64, train.NumRows())
	for i := range w {
		if train.Y[i] == 1 {
			w[i] = 15
		} else {
			w[i] = 0.05
		}
	}
	cu, _ := New().Train(train, nil)
	cw, _ := New().Train(train, w)
	p1u, p1w := 0, 0
	for i := range train.X {
		if cu.Distribution(train.X[i])[1] > 0.5 {
			p1u++
		}
		if cw.Distribution(train.X[i])[1] > 0.5 {
			p1w++
		}
	}
	if p1w <= p1u {
		t.Errorf("upweighting class 1 should shift decisions: %d vs %d", p1w, p1u)
	}
}

func TestLogisticDeterminism(t *testing.T) {
	train := mltest.Blobs(150, 4, 9)
	a, _ := New().Train(train, nil)
	b, _ := New().Train(train, nil)
	ma, mb := a.(*Model), b.(*Model)
	if ma.Bias != mb.Bias {
		t.Fatal("same seed must reproduce the model")
	}
	for j := range ma.Weights {
		if ma.Weights[j] != mb.Weights[j] {
			t.Fatal("same seed must reproduce the weights")
		}
	}
}

func TestLogisticRejectsBadInput(t *testing.T) {
	if _, err := New().Train(nil, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if New().Name() != "Logistic" {
		t.Error("name wrong")
	}
}
