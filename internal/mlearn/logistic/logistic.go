// Package logistic implements L2-regularised logistic regression
// trained by gradient descent — the classifier used by two of the
// hardware-malware-detection baselines the paper compares against
// (Ozsoy et al., HPCA'15 [13] and Khasawneh et al., RAID'15 [11]).
// It is provided as a baseline comparator; it is not one of the
// paper's eight studied classifiers.
package logistic

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Trainer builds logistic-regression models.
type Trainer struct {
	// LearningRate is the gradient step size (default 0.1).
	LearningRate float64
	// Lambda is the L2 regularisation strength (default 1e-4).
	Lambda float64
	// Epochs of full-gradient descent (default 300).
	Epochs int
	// Seed controls example ordering.
	Seed uint64
}

// New returns a trainer with the defaults above.
func New() *Trainer { return &Trainer{LearningRate: 0.1, Lambda: 1e-4, Epochs: 300, Seed: 1} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "Logistic" }

// Model is a trained logistic-regression classifier.
type Model struct {
	Scaler  *mlearn.Scaler
	Weights []float64
	Bias    float64

	// scratch holds the scaled input during DistributionInto. Unexported
	// so gob checkpoints skip it; lazily sized because decoded models
	// arrive with it nil.
	scratch []float64
}

// Probability returns P(malware|x), a calibrated sigmoid output —
// unlike SMO/SGD, logistic regression is naturally graded, which gives
// it a respectable AUC as a baseline.
func (m *Model) Probability(x []float64) float64 {
	return m.probabilityWith(x, make([]float64, len(x)))
}

func (m *Model) probabilityWith(x, buf []float64) float64 {
	u := m.Scaler.ApplyInto(x, buf)
	s := m.Bias
	for j, w := range m.Weights {
		s += w * u[j]
	}
	return 1 / (1 + math.Exp(-s))
}

// Distribution implements mlearn.Classifier.
func (m *Model) Distribution(x []float64) []float64 {
	p := m.Probability(x)
	return []float64{1 - p, p}
}

// DistributionInto implements mlearn.StreamingClassifier. Reuses the
// model's scaling scratch, so not safe for concurrent calls.
func (m *Model) DistributionInto(x []float64, out []float64) {
	if len(m.scratch) < len(x) {
		m.scratch = make([]float64, len(x))
	}
	p := m.probabilityWith(x, m.scratch[:len(x)])
	out[0], out[1] = 1-p, p
}

// Train implements mlearn.Trainer. Binary classification only.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	scaler := mlearn.FitScaler(d)

	n := d.NumRows()
	nA := d.NumAttrs()
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = scaler.Apply(d.X[i])
		y[i] = float64(d.Y[i])
	}

	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	lambda := t.Lambda
	if lambda < 0 {
		lambda = 1e-4
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 300
	}

	wv := make([]float64, nA)
	bias := 0.0
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := micro.NewRNG(t.Seed ^ 0xfeedface)

	for e := 0; e < epochs; e++ {
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		eta := lr / (1 + 0.01*float64(e))
		for _, i := range order {
			s := bias
			for j, v := range X[i] {
				s += wv[j] * v
			}
			p := 1 / (1 + math.Exp(-s))
			g := eta * (y[i] - p) * w[i]
			shrink := 1 - eta*lambda
			for j := range wv {
				wv[j] = wv[j]*shrink + g*X[i][j]
			}
			bias += g
		}
	}
	return &Model{Scaler: scaler, Weights: wv, Bias: bias}, nil
}
