package knn

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestKNNBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestKNNSolvesXOR(t *testing.T) {
	// Nearest neighbours handle nonlinear boundaries natively.
	train := mltest.XOR(400, 3)
	test := mltest.XOR(300, 4)
	mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
}

func TestKNNGradedVotes(t *testing.T) {
	train := mltest.Blobs(300, 1.5, 5) // overlapping
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	graded := 0
	for i := range train.X {
		p := c.Distribution(train.X[i])[1]
		if p > 0.1 && p < 0.9 {
			graded++
		}
	}
	if graded == 0 {
		t.Error("overlapping data should produce mixed neighbourhoods")
	}
}

func TestKNNK1MemorizesTraining(t *testing.T) {
	train := mltest.Blobs(100, 2, 7)
	tr := &Trainer{K: 1}
	c, err := tr.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c, train); acc != 1 {
		t.Errorf("1-NN training accuracy = %.3f, want 1.0", acc)
	}
}

func TestKNNWeightsBiasVotes(t *testing.T) {
	train := mltest.Blobs(200, 1.2, 9)
	w := make([]float64, train.NumRows())
	for i := range w {
		if train.Y[i] == 1 {
			w[i] = 10
		} else {
			w[i] = 0.1
		}
	}
	cu, _ := New().Train(train, nil)
	cw, _ := New().Train(train, w)
	p1u, p1w := 0, 0
	for i := range train.X {
		if cu.Distribution(train.X[i])[1] > 0.5 {
			p1u++
		}
		if cw.Distribution(train.X[i])[1] > 0.5 {
			p1w++
		}
	}
	if p1w <= p1u {
		t.Errorf("weighted votes should favour class 1: %d vs %d", p1w, p1u)
	}
}

func TestKNNKClamped(t *testing.T) {
	train := mltest.Blobs(4, 6, 1)
	tr := &Trainer{K: 50} // larger than the corpus
	c, err := tr.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.(*Model).K != 4 {
		t.Errorf("K should clamp to corpus size, got %d", c.(*Model).K)
	}
	mltest.AssertValidDistributions(t, c, train)
}

func TestKNNRejectsBadInput(t *testing.T) {
	if _, err := New().Train(nil, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if New().Name() != "KNN" {
		t.Error("name wrong")
	}
}
