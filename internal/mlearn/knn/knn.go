// Package knn implements the k-nearest-neighbour classifier used by the
// first hardware-malware-detection study (Demme et al., ISCA'13 [3]),
// provided as a baseline comparator. Neighbours vote with their
// instance weights over min-max-normalised Euclidean distance; the
// distribution output is the weighted neighbour class mix, so KNN is
// naturally graded.
//
// The trained "model" stores the training set — which is precisely why
// the paper's line of work moved away from it for hardware
// implementation (the area cost scales with the corpus, not the
// hypothesis).
package knn

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// Trainer builds KNN models.
type Trainer struct {
	// K is the neighbourhood size (default 5).
	K int
}

// New returns a KNN trainer with k=5.
func New() *Trainer { return &Trainer{K: 5} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "KNN" }

// Model is a stored-corpus nearest-neighbour classifier.
type Model struct {
	Scaler     *mlearn.Scaler
	X          [][]float64 // normalised training vectors
	Y          []int
	W          []float64
	K          int
	NumClasses int
}

// Train implements mlearn.Trainer.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	scaler := mlearn.FitScaler(d)
	k := t.K
	if k <= 0 {
		k = 5
	}
	if k > d.NumRows() {
		k = d.NumRows()
	}
	m := &Model{
		Scaler:     scaler,
		X:          make([][]float64, d.NumRows()),
		Y:          append([]int(nil), d.Y...),
		W:          w,
		K:          k,
		NumClasses: d.NumClasses(),
	}
	for i := range d.X {
		m.X[i] = scaler.Apply(d.X[i])
	}
	return m, nil
}

// Distribution implements mlearn.Classifier.
func (m *Model) Distribution(x []float64) []float64 {
	u := m.Scaler.Apply(x)
	type nb struct {
		d2 float64
		i  int
	}
	nbs := make([]nb, len(m.X))
	for i, xi := range m.X {
		s := 0.0
		for j := range xi {
			d := xi[j] - u[j]
			s += d * d
		}
		nbs[i] = nb{d2: s, i: i}
	}
	sort.Slice(nbs, func(a, b int) bool {
		if nbs[a].d2 != nbs[b].d2 {
			return nbs[a].d2 < nbs[b].d2
		}
		return nbs[a].i < nbs[b].i
	})
	votes := make([]float64, m.NumClasses)
	total := 0.0
	for _, n := range nbs[:m.K] {
		votes[m.Y[n.i]] += m.W[n.i]
		total += m.W[n.i]
	}
	if total > 0 {
		for c := range votes {
			votes[c] /= total
		}
	}
	return votes
}
