// Package mlearn defines the classifier interfaces and shared training
// utilities for the eight general learners the paper evaluates
// (BayesNet, J48, JRip, MLP, OneR, REPTree, SGD, SMO — implemented in
// subpackages) and the ensemble meta-learners (AdaBoost.M1, Bagging).
//
// All trainers accept per-instance weights so boosting can reweight the
// training set; passing nil means uniform weights. Classifiers expose
// class probability distributions, which the evaluation layer uses to
// build ROC curves; learners whose natural output is an uncalibrated
// hard decision (WEKA's SMO without logistic fitting) return degenerate
// one-hot distributions, which — exactly as in the paper — costs them
// AUC even when their accuracy is competitive.
package mlearn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// Classifier is a trained model.
type Classifier interface {
	// Distribution returns the per-class probability estimate for x.
	// The slice has one entry per class and sums to 1 (or is all-zero
	// only if the model is degenerate).
	Distribution(x []float64) []float64
}

// StreamingClassifier is the zero-allocation inference fast path: a
// classifier that can write its class distribution into a
// caller-provided buffer instead of allocating a fresh slice per call.
// The run-time verdict loop classifies one sample every 10 ms interval
// forever, so per-call garbage is the difference between a detector
// that co-runs with the workload and one that fights it for the
// allocator.
//
// Contract: out has exactly one entry per class; implementations fill
// every entry and must not retain out. Implementations may reuse
// internal scratch buffers, so DistributionInto is NOT safe for
// concurrent calls on the same model — use one model (or one scratch
// owner, e.g. core.Batcher) per goroutine. Distribution remains safe
// for concurrent use and keeps its fresh-slice contract.
type StreamingClassifier interface {
	Classifier
	DistributionInto(x []float64, out []float64)
}

// Trainer builds classifiers from weighted training data.
type Trainer interface {
	// Name returns the WEKA-style classifier name (e.g. "J48").
	Name() string
	// Train fits a model. weights may be nil (uniform) and need not be
	// normalised; len(weights) must equal d.NumRows() otherwise.
	Train(d *dataset.Instances, weights []float64) (Classifier, error)
}

// Predict returns the argmax class of c's distribution for x, breaking
// ties toward the lower class index.
func Predict(c Classifier, x []float64) int {
	dist := c.Distribution(x)
	best, bestP := 0, math.Inf(-1)
	for i, p := range dist {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// Score returns a scalar "malware-ness" score used for ROC sweeps on
// binary problems: the probability of class 1.
func Score(c Classifier, x []float64) float64 {
	dist := c.Distribution(x)
	if len(dist) < 2 {
		return 0
	}
	return dist[1]
}

// DistributionInto writes c's distribution for x into out (one entry
// per class), using the classifier's zero-allocation fast path when it
// implements StreamingClassifier and falling back to copying from
// Distribution otherwise. The fallback allocates; the fast path does
// not.
func DistributionInto(c Classifier, x []float64, out []float64) {
	if sc, ok := c.(StreamingClassifier); ok {
		sc.DistributionInto(x, out)
		return
	}
	copy(out, c.Distribution(x))
}

// PredictWith is Predict evaluating the distribution into the
// caller-owned scratch buffer (len = number of classes), so the
// steady-state prediction path allocates nothing for streaming
// classifiers.
func PredictWith(c Classifier, x []float64, scratch []float64) int {
	DistributionInto(c, x, scratch)
	best, bestP := 0, math.Inf(-1)
	for i, p := range scratch {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// ScoreWith is Score evaluating the distribution into the caller-owned
// scratch buffer (len = number of classes).
func ScoreWith(c Classifier, x []float64, scratch []float64) float64 {
	DistributionInto(c, x, scratch)
	if len(scratch) < 2 {
		return 0
	}
	return scratch[1]
}

// NumClasses reports the class count of a trained classifier expecting
// attrs input features, by probing it with a zero vector. Used to size
// scratch buffers for the streaming fast path when the training-time
// class count is no longer at hand (e.g. a model loaded from a
// checkpoint).
func NumClasses(c Classifier, attrs int) int {
	return len(c.Distribution(make([]float64, attrs)))
}

// CheckTrainable validates the (dataset, weights) pair for trainers.
func CheckTrainable(d *dataset.Instances, weights []float64) error {
	if d == nil || d.NumRows() == 0 {
		return errors.New("mlearn: empty training set")
	}
	if d.NumAttrs() == 0 {
		return errors.New("mlearn: no attributes")
	}
	if d.NumClasses() < 2 {
		return errors.New("mlearn: need at least two classes")
	}
	if weights != nil && len(weights) != d.NumRows() {
		return fmt.Errorf("mlearn: %d weights for %d rows", len(weights), d.NumRows())
	}
	if weights != nil {
		sum := 0.0
		for _, w := range weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return errors.New("mlearn: invalid instance weight")
			}
			sum += w
		}
		if sum == 0 {
			return errors.New("mlearn: all instance weights are zero")
		}
	}
	return nil
}

// UniformWeights returns a weight vector of 1s, or normalises the given
// weights to sum to n (the WEKA convention, which keeps weighted counts
// on the same scale as instance counts).
func UniformWeights(d *dataset.Instances, weights []float64) []float64 {
	n := d.NumRows()
	out := make([]float64, n)
	if weights == nil {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	scale := float64(n) / sum
	for i, w := range weights {
		out[i] = w * scale
	}
	return out
}

// ClassDistribution returns the weighted class prior of d.
func ClassDistribution(d *dataset.Instances, weights []float64) []float64 {
	w := weights
	if w == nil {
		w = UniformWeights(d, nil)
	}
	dist := make([]float64, d.NumClasses())
	total := 0.0
	for i, y := range d.Y {
		dist[y] += w[i]
		total += w[i]
	}
	if total > 0 {
		for i := range dist {
			dist[i] /= total
		}
	}
	return dist
}

// MajorityClass returns the weighted majority class of d.
func MajorityClass(d *dataset.Instances, weights []float64) int {
	dist := ClassDistribution(d, weights)
	best, bestP := 0, -1.0
	for i, p := range dist {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// Resample draws a bootstrap sample of size n from d with probability
// proportional to weights (uniform when nil). Used by Bagging and by
// AdaBoost for base learners that cannot consume weights directly.
func Resample(d *dataset.Instances, weights []float64, n int, seed uint64) *dataset.Instances {
	if n <= 0 {
		n = d.NumRows()
	}
	w := weights
	if w == nil {
		w = UniformWeights(d, nil)
	}
	// Cumulative distribution for inverse-transform sampling.
	cum := make([]float64, len(w))
	total := 0.0
	for i, v := range w {
		total += v
		cum[i] = total
	}
	attrs := make([]string, d.NumAttrs())
	for i, a := range d.Attributes {
		attrs[i] = a.Name
	}
	out := dataset.New(attrs, d.ClassNames)
	rng := micro.NewRNG(seed)
	for k := 0; k < n; k++ {
		u := rng.Float64() * total
		// Binary search the cumulative weights.
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		_ = out.Add(d.X[lo], d.Y[lo], d.Groups[lo])
	}
	return out
}

// Entropy computes the Shannon entropy (bits) of a weighted count
// vector.
func Entropy(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			e -= p * math.Log2(p)
		}
	}
	return e
}

// Scaler normalises attributes to [0,1] by training-set min/max, the
// preprocessing WEKA's MultilayerPerceptron and function-family
// learners apply.
type Scaler struct {
	Min, Max []float64
}

// FitScaler learns per-attribute ranges from d.
func FitScaler(d *dataset.Instances) *Scaler {
	s := &Scaler{
		Min: make([]float64, d.NumAttrs()),
		Max: make([]float64, d.NumAttrs()),
	}
	for j := range s.Min {
		s.Min[j] = math.Inf(1)
		s.Max[j] = math.Inf(-1)
	}
	for _, row := range d.X {
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s
}

// Apply maps x into [0,1] per attribute (clamping values outside the
// training range, as happens with unseen test programs).
func (s *Scaler) Apply(x []float64) []float64 {
	return s.ApplyInto(x, make([]float64, len(x)))
}

// ApplyInto is Apply writing into the caller-owned buffer out
// (len(out) == len(x)), the allocation-free path for streaming
// inference. Returns out.
func (s *Scaler) ApplyInto(x, out []float64) []float64 {
	for j, v := range x {
		span := s.Max[j] - s.Min[j]
		if span <= 0 {
			out[j] = 0.5
			continue
		}
		u := (v - s.Min[j]) / span
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		out[j] = u
	}
	return out
}
