package jrip

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestJRipBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)

	m := c.(*Model)
	if len(m.Rules) == 0 {
		t.Fatal("separable problem should produce at least one rule")
	}
	for _, r := range m.Rules {
		if len(r.Conds) == 0 {
			t.Error("rule with no conditions")
		}
		if r.Confidence <= 0.5 {
			t.Errorf("rule confidence %.3f suspiciously low", r.Confidence)
		}
	}
}

func TestJRipXOR(t *testing.T) {
	train := mltest.XOR(500, 3)
	test := mltest.XOR(300, 4)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.85)
	m := c.(*Model)
	// XOR needs at least two rules (one per positive quadrant).
	if len(m.Rules) < 2 {
		t.Errorf("XOR should need >= 2 rules, got %d", len(m.Rules))
	}
}

func TestJRipBands(t *testing.T) {
	train := mltest.Bands(500, 5)
	test := mltest.Bands(300, 6)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	m := c.(*Model)
	// The band is the minority -> rules should target class 1 and need
	// both a >= and a <= condition.
	if m.TargetClass != 1 {
		t.Errorf("target class = %d, want 1 (minority/malware-like)", m.TargetClass)
	}
}

func TestJRipConditionMatch(t *testing.T) {
	ge := Condition{Attr: 0, Ge: true, Threshold: 5}
	le := Condition{Attr: 0, Ge: false, Threshold: 5}
	if !ge.Match([]float64{5}) || ge.Match([]float64{4.9}) {
		t.Error("Ge condition wrong")
	}
	if !le.Match([]float64{5}) || le.Match([]float64{5.1}) {
		t.Error("Le condition wrong")
	}
	r := Rule{Conds: []Condition{ge, {Attr: 1, Ge: false, Threshold: 2}}, Class: 1}
	if !r.Match([]float64{6, 1}) || r.Match([]float64{6, 3}) || r.Match([]float64{4, 1}) {
		t.Error("rule conjunction wrong")
	}
}

func TestJRipDefaultDistribution(t *testing.T) {
	train := mltest.Blobs(200, 5, 7)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	sum := 0.0
	for _, p := range m.Default {
		if p < 0 || p > 1 {
			t.Fatalf("default distribution entry %v out of range", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("default distribution sums to %v", sum)
	}
}

func TestJRipOptimizeToggle(t *testing.T) {
	train := mltest.XOR(400, 9)
	test := mltest.XOR(300, 10)
	plain := &Trainer{Folds: 3, MinWeight: 2, Optimize: false, Seed: 1}
	opt := New()
	cp, err := plain.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	co, err := opt.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	accP := mltest.Accuracy(cp, test)
	accO := mltest.Accuracy(co, test)
	if accO < accP-0.1 {
		t.Errorf("optimisation pass hurt badly: %.3f vs %.3f", accO, accP)
	}
}

func TestJRipTerminates(t *testing.T) {
	// Pure-noise labels: rule induction must terminate quickly and
	// produce few or no rules.
	train := mltest.Blobs(200, 0, 11) // zero separation
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	if len(m.Rules) > 20 {
		t.Errorf("noise dataset produced %d rules", len(m.Rules))
	}
	mltest.AssertValidDistributions(t, c, train)
}
