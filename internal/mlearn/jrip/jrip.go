// Package jrip implements the RIPPER rule learner (Cohen 1995), WEKA's
// JRip: an ordered rule list for the minority class learned by
// IREP-style grow/prune — each rule is grown condition-by-condition on
// a grow subset maximising FOIL information gain until it covers no
// negatives, then pruned back on a held-out prune subset maximising the
// (p-n)/(p+n) worth metric. Rule induction stops when a new rule's
// prune-set error exceeds 50% or the description-length budget is
// exhausted; remaining instances fall through to a default rule.
//
// Like the original, conditions test numeric attributes against
// thresholds (attr <= v or attr >= v). The optimisation pass of full
// RIPPER (rule replacement/revision) is run once, matching WEKA's
// default of 2 optimisation rounds in spirit while keeping induction
// deterministic and fast.
package jrip

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Trainer builds JRip models.
type Trainer struct {
	// Folds controls the grow/prune partition per rule (WEKA default 3:
	// two thirds grow, one third prune).
	Folds int
	// MinWeight is the minimal total weight of instances a rule must
	// cover (WEKA minNo, default 2).
	MinWeight float64
	// Optimize enables the post-induction revision pass.
	Optimize bool
	// Seed controls the grow/prune partition.
	Seed uint64
}

// New returns a JRip trainer with WEKA-like defaults.
func New() *Trainer { return &Trainer{Folds: 3, MinWeight: 2, Optimize: true, Seed: 1} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "JRip" }

// Condition is one numeric test in a rule.
type Condition struct {
	Attr      int
	Ge        bool // true: x[Attr] >= Threshold, false: x[Attr] <= Threshold
	Threshold float64
}

// Match reports whether x satisfies the condition.
func (c Condition) Match(x []float64) bool {
	if c.Ge {
		return x[c.Attr] >= c.Threshold
	}
	return x[c.Attr] <= c.Threshold
}

// Rule is a conjunction of conditions predicting Class.
type Rule struct {
	Conds []Condition
	Class int
	// Confidence is the smoothed precision of the rule on training
	// data, used for the distribution output.
	Confidence float64
}

// Match reports whether x satisfies every condition of the rule.
func (r *Rule) Match(x []float64) bool {
	for _, c := range r.Conds {
		if !c.Match(x) {
			return false
		}
	}
	return true
}

// Model is an ordered rule list with a default distribution.
type Model struct {
	Rules       []Rule
	Default     []float64 // class distribution of uncovered instances
	NumClasses  int
	TargetClass int // the class the rules predict (minority class)
}

// Distribution implements mlearn.Classifier: the first matching rule
// fires with its confidence; otherwise the default distribution.
func (m *Model) Distribution(x []float64) []float64 {
	for i := range m.Rules {
		if m.Rules[i].Match(x) {
			dist := make([]float64, m.NumClasses)
			rest := (1 - m.Rules[i].Confidence) / float64(m.NumClasses-1)
			for c := range dist {
				if c == m.Rules[i].Class {
					dist[c] = m.Rules[i].Confidence
				} else {
					dist[c] = rest
				}
			}
			return dist
		}
	}
	return m.Default
}

// DistributionInto implements mlearn.StreamingClassifier (stateless,
// safe for concurrent callers).
func (m *Model) DistributionInto(x []float64, out []float64) {
	for i := range m.Rules {
		if m.Rules[i].Match(x) {
			rest := (1 - m.Rules[i].Confidence) / float64(m.NumClasses-1)
			for c := range out {
				if c == m.Rules[i].Class {
					out[c] = m.Rules[i].Confidence
				} else {
					out[c] = rest
				}
			}
			return
		}
	}
	copy(out, m.Default)
}

type inst struct {
	x []float64
	y int
	w float64
}

// Train implements mlearn.Trainer. Binary classification only (the
// paper's malware-vs-benign setting).
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	k := d.NumClasses()

	// Target = minority class by weight (RIPPER orders classes by
	// increasing frequency; with two classes only the minority gets
	// rules).
	classW := make([]float64, k)
	for i, y := range d.Y {
		classW[y] += w[i]
	}
	target := 0
	for c := range classW {
		if classW[c] < classW[target] {
			target = c
		}
	}

	pool := make([]inst, d.NumRows())
	for i := range pool {
		pool[i] = inst{x: d.X[i], y: d.Y[i], w: w[i]}
	}

	minW := t.MinWeight
	if minW <= 0 {
		minW = 2
	}
	folds := t.Folds
	if folds < 2 {
		folds = 3
	}

	var rules []Rule
	rng := micro.NewRNG(t.Seed ^ 0xa5a5a5a5)
	maxRules := 2*d.NumAttrs() + 8 // generous cap to guarantee termination
	for len(rules) < maxRules {
		pos := 0.0
		for _, in := range pool {
			if in.y == target {
				pos += in.w
			}
		}
		if pos < minW {
			break
		}
		grow, prune := partition(pool, folds, rng)
		r, ok := growRule(grow, target, minW)
		if !ok {
			break
		}
		pruneRule(&r, prune, target)

		// Accept only if prune-set precision is better than chance.
		p, n := coverage(prune, &r, target)
		if p+n > 0 && p < n {
			break
		}
		// Confidence from the full pool (Laplace smoothing).
		fp, fn := coverage(pool, &r, target)
		r.Confidence = (fp + 1) / (fp + fn + 2)
		rules = append(rules, r)

		// Remove all covered instances (RIPPER removes covered
		// examples of both classes).
		next := pool[:0]
		for _, in := range pool {
			if !r.Match(in.x) {
				next = append(next, in)
			}
		}
		if len(next) == len(pool) {
			break // rule covered nothing; avoid livelock
		}
		pool = next
	}

	if t.Optimize && len(rules) > 0 {
		rules = t.optimize(d, w, rules, target, minW, folds, rng)
	}

	// Default distribution over instances not covered by any rule.
	def := make([]float64, k)
	covered := func(x []float64) bool {
		for i := range rules {
			if rules[i].Match(x) {
				return true
			}
		}
		return false
	}
	defTotal := 0.0
	for i := range d.X {
		if !covered(d.X[i]) {
			def[d.Y[i]] += w[i]
			defTotal += w[i]
		}
	}
	if defTotal > 0 {
		for c := range def {
			def[c] /= defTotal
		}
	} else {
		// Everything covered: default to the complement-class prior.
		for c := range def {
			def[c] = classW[c]
		}
		s := classW[0] + classW[1]
		for c := range def {
			def[c] /= s
		}
	}

	return &Model{Rules: rules, Default: def, NumClasses: k, TargetClass: target}, nil
}

// partition shuffles pool and splits it into grow (2/3) and prune (1/3).
func partition(pool []inst, folds int, rng *micro.RNG) (grow, prune []inst) {
	perm := append([]inst(nil), pool...)
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	cut := len(perm) - len(perm)/folds
	if cut == len(perm) && len(perm) > 1 {
		cut = len(perm) - 1
	}
	return perm[:cut], perm[cut:]
}

// coverage returns the weighted positive and negative coverage of r.
func coverage(set []inst, r *Rule, target int) (p, n float64) {
	for _, in := range set {
		if !r.Match(in.x) {
			continue
		}
		if in.y == target {
			p += in.w
		} else {
			n += in.w
		}
	}
	return p, n
}

// growRule adds conditions greedily, maximising FOIL gain, until the
// rule covers no negatives on the grow set or no condition helps.
func growRule(grow []inst, target int, minW float64) (Rule, bool) {
	r := Rule{Class: target}
	covered := append([]inst(nil), grow...)
	if len(covered) == 0 {
		return r, false
	}
	numAttrs := len(covered[0].x)

	for iter := 0; iter < 64; iter++ {
		p0, n0 := coverage(covered, &Rule{Class: target}, target)
		if n0 == 0 || p0 < minW {
			break
		}
		base := math.Log2(p0 / (p0 + n0))

		bestGain := 1e-9
		var bestCond Condition
		found := false
		for a := 0; a < numAttrs; a++ {
			for _, cond := range candidateConds(covered, a, target) {
				p1, n1 := condCoverage(covered, cond, target)
				if p1 < minW {
					continue
				}
				gain := p1 * (math.Log2(p1/(p1+n1)) - base)
				if gain > bestGain {
					bestGain, bestCond, found = gain, cond, true
				}
			}
		}
		if !found {
			break
		}
		r.Conds = append(r.Conds, bestCond)
		next := covered[:0]
		for _, in := range covered {
			if bestCond.Match(in.x) {
				next = append(next, in)
			}
		}
		covered = next
	}
	return r, len(r.Conds) > 0
}

// candidateConds proposes threshold tests for attribute a: midpoints
// between adjacent distinct values, capped for tractability by
// quantile subsampling.
func candidateConds(set []inst, a int, target int) []Condition {
	vals := make([]float64, 0, len(set))
	for _, in := range set {
		vals = append(vals, in.x[a])
	}
	sort.Float64s(vals)
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v > uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	const maxCuts = 24
	step := 1
	if len(uniq)-1 > maxCuts {
		step = (len(uniq) - 1) / maxCuts
	}
	var conds []Condition
	for i := 0; i+1 < len(uniq); i += step {
		th := (uniq[i] + uniq[i+1]) / 2
		conds = append(conds,
			Condition{Attr: a, Ge: false, Threshold: th},
			Condition{Attr: a, Ge: true, Threshold: th},
		)
	}
	return conds
}

func condCoverage(set []inst, c Condition, target int) (p, n float64) {
	for _, in := range set {
		if !c.Match(in.x) {
			continue
		}
		if in.y == target {
			p += in.w
		} else {
			n += in.w
		}
	}
	return p, n
}

// pruneRule drops trailing conditions while the IREP worth metric
// (p-n)/(p+n) on the prune set improves.
func pruneRule(r *Rule, prune []inst, target int) {
	if len(prune) == 0 {
		return
	}
	worth := func(conds []Condition) float64 {
		rr := Rule{Conds: conds, Class: target}
		p, n := coverage(prune, &rr, target)
		if p+n == 0 {
			return -1
		}
		return (p - n) / (p + n)
	}
	best := worth(r.Conds)
	bestLen := len(r.Conds)
	for l := len(r.Conds) - 1; l >= 1; l-- {
		if w := worth(r.Conds[:l]); w >= best {
			best, bestLen = w, l
		}
	}
	r.Conds = r.Conds[:bestLen]
}

// optimize re-grows each rule and keeps the variant (original,
// replacement, revision) with the lowest error on a fresh partition —
// a single-round version of RIPPER's optimisation stage.
func (t *Trainer) optimize(d *dataset.Instances, w []float64, rules []Rule, target int, minW float64, folds int, rng *micro.RNG) []Rule {
	all := make([]inst, d.NumRows())
	for i := range all {
		all[i] = inst{x: d.X[i], y: d.Y[i], w: w[i]}
	}
	out := append([]Rule(nil), rules...)
	for ri := range out {
		// Instances not covered by the other rules.
		var residual []inst
		for _, in := range all {
			coveredByOther := false
			for rj := range out {
				if rj != ri && out[rj].Match(in.x) {
					coveredByOther = true
					break
				}
			}
			if !coveredByOther {
				residual = append(residual, in)
			}
		}
		if len(residual) == 0 {
			continue
		}
		grow, prune := partition(residual, folds, rng)
		repl, ok := growRule(grow, target, minW)
		if !ok {
			continue
		}
		pruneRule(&repl, prune, target)

		evalErr := func(r *Rule) float64 {
			p, n := coverage(residual, r, target)
			posTotal := 0.0
			for _, in := range residual {
				if in.y == target {
					posTotal += in.w
				}
			}
			// Error = false positives + missed positives.
			return n + (posTotal - p)
		}
		if evalErr(&repl) < evalErr(&out[ri]) {
			fp, fn := coverage(all, &repl, target)
			repl.Confidence = (fp + 1) / (fp + fn + 2)
			out[ri] = repl
		}
	}
	return out
}
