package sgd

import (
	"testing"

	"repro/internal/mlearn/mltest"
)

func TestSGDBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestSGDHardOutput(t *testing.T) {
	train := mltest.Blobs(200, 3, 3)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.X {
		d := c.Distribution(train.X[i])
		if !(d[0] == 0 && d[1] == 1) && !(d[0] == 1 && d[1] == 0) {
			t.Fatal("SGD must emit hard 0/1 distributions (WEKA hinge behaviour)")
		}
	}
}

func TestSGDMarginSign(t *testing.T) {
	train := mltest.Blobs(400, 6, 5)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*Model)
	// Class-1 blob centre is at (6,3): margin should be positive there
	// and negative at the class-0 centre (0,0).
	if m.Margin([]float64{6, 3}) <= 0 {
		t.Error("margin at class-1 centre should be positive")
	}
	if m.Margin([]float64{0, 0}) >= 0 {
		t.Error("margin at class-0 centre should be negative")
	}
}

func TestSGDWeightsBiasDecision(t *testing.T) {
	// Overlapping blobs with weight massively on class 1: decisions in
	// the overlap zone should flip toward class 1.
	train := mltest.Blobs(400, 1.5, 7)
	w := make([]float64, train.NumRows())
	for i := range w {
		if train.Y[i] == 1 {
			w[i] = 20
		} else {
			w[i] = 0.05
		}
	}
	cu, _ := New().Train(train, nil)
	cw, _ := New().Train(train, w)
	pred1u, pred1w := 0, 0
	for i := range train.X {
		if cu.Distribution(train.X[i])[1] == 1 {
			pred1u++
		}
		if cw.Distribution(train.X[i])[1] == 1 {
			pred1w++
		}
	}
	if pred1w <= pred1u {
		t.Errorf("class-1 weighting should increase class-1 predictions: %d vs %d", pred1w, pred1u)
	}
}

func TestSGDDeterminism(t *testing.T) {
	train := mltest.Blobs(200, 4, 9)
	a, _ := New().Train(train, nil)
	b, _ := New().Train(train, nil)
	ma, mb := a.(*Model), b.(*Model)
	for j := range ma.Weights {
		if ma.Weights[j] != mb.Weights[j] {
			t.Fatal("identical seeds must give identical weights")
		}
	}
}
