// Package sgd implements a linear support-vector machine trained by
// stochastic gradient descent on the regularised hinge loss — WEKA's
// SGD classifier with its default loss. Inputs are min-max normalised
// (as WEKA does) and instance weights scale the per-example updates so
// the learner is usable under AdaBoost.
//
// Like WEKA's SGD with hinge loss, the model outputs hard {0,1}
// distributions (no probability calibration); the paper's low SGD AUC
// (~0.74 at 8 HPCs) is a direct consequence, and boosting — which
// produces graded weighted votes — is what repairs it.
package sgd

import (
	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
)

// Trainer builds linear hinge-loss models with SGD.
type Trainer struct {
	// LearningRate is the initial step size (WEKA default 0.01).
	LearningRate float64
	// Lambda is the L2 regularisation strength (WEKA default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the data (WEKA default 500).
	Epochs int
	// Seed controls example ordering.
	Seed uint64
}

// New returns an SGD trainer with WEKA defaults.
func New() *Trainer { return &Trainer{LearningRate: 0.01, Lambda: 1e-4, Epochs: 500, Seed: 1} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "SGD" }

// Model is a trained linear classifier.
type Model struct {
	Scaler  *mlearn.Scaler
	Weights []float64 // one per attribute (normalised space)
	Bias    float64

	// scratch holds the scaled input during DistributionInto. Unexported
	// so gob checkpoints skip it; lazily sized because decoded models
	// arrive with it nil.
	scratch []float64
}

// Margin returns the signed decision value for x (positive = class 1).
func (m *Model) Margin(x []float64) float64 {
	return m.marginWith(x, make([]float64, len(x)))
}

func (m *Model) marginWith(x, buf []float64) float64 {
	u := m.Scaler.ApplyInto(x, buf)
	s := m.Bias
	for j, w := range m.Weights {
		s += w * u[j]
	}
	return s
}

// Distribution implements mlearn.Classifier with a hard decision,
// mirroring WEKA's uncalibrated hinge-loss output.
func (m *Model) Distribution(x []float64) []float64 {
	out := make([]float64, 2)
	m.DistributionInto(x, out)
	return out
}

// DistributionInto implements mlearn.StreamingClassifier. Reuses the
// model's scaling scratch, so not safe for concurrent calls.
func (m *Model) DistributionInto(x []float64, out []float64) {
	if len(m.scratch) < len(x) {
		m.scratch = make([]float64, len(x))
	}
	if m.marginWith(x, m.scratch[:len(x)]) >= 0 {
		out[0], out[1] = 0, 1
	} else {
		out[0], out[1] = 1, 0
	}
}

// Train implements mlearn.Trainer. Binary classification only.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	scaler := mlearn.FitScaler(d)

	n := d.NumRows()
	nA := d.NumAttrs()
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = scaler.Apply(d.X[i])
		if d.Y[i] == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	lr := t.LearningRate
	if lr <= 0 {
		lr = 0.01
	}
	lambda := t.Lambda
	if lambda < 0 {
		lambda = 1e-4
	}
	epochs := t.Epochs
	if epochs <= 0 {
		epochs = 500
	}

	wv := make([]float64, nA)
	bias := 0.0
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := micro.NewRNG(t.Seed ^ 0x5bd1e995)

	step := 0
	for e := 0; e < epochs; e++ {
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			step++
			eta := lr / (1 + lr*lambda*float64(step))
			margin := bias
			for j, v := range X[i] {
				margin += wv[j] * v
			}
			// L2 shrink.
			shrink := 1 - eta*lambda
			for j := range wv {
				wv[j] *= shrink
			}
			if y[i]*margin < 1 {
				g := eta * y[i] * w[i]
				for j, v := range X[i] {
					wv[j] += g * v
				}
				bias += g
			}
		}
	}
	return &Model{Scaler: scaler, Weights: wv, Bias: bias}, nil
}
