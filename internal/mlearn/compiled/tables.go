package compiled

import (
	"fmt"

	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/oner"
)

// bayesProgram is a naive-Bayes network with its per-attribute cut
// points and conditional probability tables packed into two flat
// slices: attribute j's cuts live at cuts[cutOff[j]:cutOff[j+1]] and
// its k×bins CPT block at cpt[cptOff[j]:] indexed [class*bins+bin].
// Note the interpreted model renormalises the posterior after every
// attribute (underflow protection), so the lowering keeps the
// multiplicative probability tables and that exact schedule rather
// than switching to summed log-probabilities, which would change the
// float results.
type bayesProgram struct {
	k      int
	prior  []float64
	cuts   []float64
	cutOff []int32
	cpt    []float64
	cptOff []int32
	bins   []int32
}

func compileBayes(m *bayesnet.Model) (*Program, error) {
	k := len(m.Prior)
	if m.Disc == nil || k < 1 || len(m.CPT) != len(m.Disc.Cuts) {
		return nil, fmt.Errorf("%w: malformed BayesNet", ErrUnsupported)
	}
	bp := &bayesProgram{
		k:      k,
		prior:  append([]float64(nil), m.Prior...),
		cutOff: make([]int32, 1, len(m.CPT)+1),
		cptOff: make([]int32, 1, len(m.CPT)+1),
		bins:   make([]int32, 0, len(m.CPT)),
	}
	for j, cuts := range m.Disc.Cuts {
		bins := len(cuts) + 1
		if len(m.CPT[j]) != k {
			return nil, fmt.Errorf("%w: CPT attr %d has %d classes, prior has %d",
				ErrUnsupported, j, len(m.CPT[j]), k)
		}
		for c := 0; c < k; c++ {
			if len(m.CPT[j][c]) != bins {
				return nil, fmt.Errorf("%w: CPT attr %d class %d has %d bins, discretizer has %d",
					ErrUnsupported, j, c, len(m.CPT[j][c]), bins)
			}
			bp.cpt = append(bp.cpt, m.CPT[j][c]...)
		}
		bp.cuts = append(bp.cuts, cuts...)
		bp.cutOff = append(bp.cutOff, int32(len(bp.cuts)))
		bp.cptOff = append(bp.cptOff, int32(len(bp.cpt)))
		bp.bins = append(bp.bins, int32(bins))
	}
	p := &Program{kind: kindBayes, classes: k, bayes: bp}
	p.census = Census{
		Comparators: len(bp.cuts),
		TableWords:  len(bp.cpt) + k,
		Submodels:   1,
	}
	return p, nil
}

// into is bayesnet.Model.DistributionInto over the packed tables: the
// same binary bin search per attribute, the same multiply-then-rescale
// posterior schedule, the same degenerate fallback to the prior.
func (bp *bayesProgram) into(x, out []float64) {
	k := bp.k
	post := out[:k]
	copy(post, bp.prior)
	for j := range bp.bins {
		cuts := bp.cuts[bp.cutOff[j]:bp.cutOff[j+1]]
		v := x[j]
		lo, hi := 0, len(cuts)
		for lo < hi {
			mid := (lo + hi) / 2
			if v < cuts[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		bins := int(bp.bins[j])
		tbl := bp.cpt[bp.cptOff[j]:]
		for c := 0; c < k; c++ {
			post[c] *= tbl[c*bins+lo]
		}
		sum := 0.0
		for _, p := range post {
			sum += p
		}
		if sum > 0 {
			for c := range post {
				post[c] /= sum
			}
		}
	}
	sum := 0.0
	for _, p := range post {
		sum += p
	}
	if sum == 0 {
		copy(post, bp.prior)
		return
	}
	for c := range post {
		post[c] /= sum
	}
}

// onerProgram is a OneR rule's threshold ladder over one attribute.
type onerProgram struct {
	attr    int
	thr     []float64
	classes []int32
	k       int
}

func compileOneR(m *oner.Model) (*Program, error) {
	if m.NumClasses < 1 || m.Attr < 0 || len(m.Classes) != len(m.Thresholds)+1 {
		return nil, fmt.Errorf("%w: malformed OneR rule", ErrUnsupported)
	}
	op := &onerProgram{
		attr:    m.Attr,
		thr:     append([]float64(nil), m.Thresholds...),
		classes: make([]int32, len(m.Classes)),
		k:       m.NumClasses,
	}
	for i, c := range m.Classes {
		if c < 0 || c >= m.NumClasses {
			return nil, fmt.Errorf("%w: OneR interval class out of range", ErrUnsupported)
		}
		op.classes[i] = int32(c)
	}
	p := &Program{kind: kindOneR, classes: m.NumClasses, oner: op}
	p.census = Census{Comparators: len(op.thr), Submodels: 1}
	return p, nil
}

// into is oner.Model.DistributionInto: zero, then one-hot the interval
// class found by the same ascending threshold scan.
func (op *onerProgram) into(x, out []float64) {
	o := out[:op.k]
	for i := range o {
		o[i] = 0
	}
	v := x[op.attr]
	cls := op.classes[len(op.classes)-1]
	for i, th := range op.thr {
		if v < th {
			cls = op.classes[i]
			break
		}
	}
	o[cls] = 1
}

// rulesProgram is a JRip ordered rule list flattened into condition
// arrays: rule r's conditions live at [ruleOff[r]:ruleOff[r+1]].
type rulesProgram struct {
	condAttr []int32
	condGe   []bool
	condThr  []float64
	ruleOff  []int32
	ruleCls  []int32
	ruleConf []float64
	def      []float64
	k        int
}

func compileRules(m *jrip.Model) (*Program, error) {
	if m.NumClasses < 2 || len(m.Default) < m.NumClasses {
		return nil, fmt.Errorf("%w: malformed JRip model", ErrUnsupported)
	}
	rp := &rulesProgram{
		ruleOff: make([]int32, 1, len(m.Rules)+1),
		def:     append([]float64(nil), m.Default...),
		k:       m.NumClasses,
	}
	for i := range m.Rules {
		r := &m.Rules[i]
		if r.Class < 0 || r.Class >= m.NumClasses {
			return nil, fmt.Errorf("%w: JRip rule class out of range", ErrUnsupported)
		}
		for _, c := range r.Conds {
			if c.Attr < 0 {
				return nil, fmt.Errorf("%w: JRip condition attribute out of range", ErrUnsupported)
			}
			rp.condAttr = append(rp.condAttr, int32(c.Attr))
			rp.condGe = append(rp.condGe, c.Ge)
			rp.condThr = append(rp.condThr, c.Threshold)
		}
		rp.ruleOff = append(rp.ruleOff, int32(len(rp.condAttr)))
		rp.ruleCls = append(rp.ruleCls, int32(r.Class))
		rp.ruleConf = append(rp.ruleConf, r.Confidence)
	}
	p := &Program{kind: kindRules, classes: m.NumClasses, rules: rp}
	p.census = Census{
		Comparators: len(rp.condAttr),
		TableWords:  m.NumClasses,
		Submodels:   1,
	}
	return p, nil
}

// into is jrip.Model.DistributionInto: first matching rule fires with
// its confidence spread, otherwise the default distribution.
func (rp *rulesProgram) into(x, out []float64) {
	o := out[:rp.k]
	for r := 0; r < len(rp.ruleCls); r++ {
		matched := true
		for ci := rp.ruleOff[r]; ci < rp.ruleOff[r+1]; ci++ {
			// The negations are written against the interpreted
			// comparisons (x >= t / x <= t) so NaN inputs fail to match
			// exactly as they do in Condition.Match.
			v := x[rp.condAttr[ci]]
			if rp.condGe[ci] {
				if !(v >= rp.condThr[ci]) {
					matched = false
					break
				}
			} else if !(v <= rp.condThr[ci]) {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		rest := (1 - rp.ruleConf[r]) / float64(rp.k-1)
		cls := int(rp.ruleCls[r])
		for c := range o {
			if c == cls {
				o[c] = rp.ruleConf[r]
			} else {
				o[c] = rest
			}
		}
		return
	}
	copy(o, rp.def)
}
