package compiled

import "math"

// Evaluator is a per-goroutine evaluation context over an immutable
// shared Program: it owns every scratch buffer the kernels need, so any
// number of Evaluators can score through the same Program concurrently.
// All buffers are sized at construction — the steady-state Score /
// Predict / DistributionInto / ScoreBatch paths allocate nothing.
//
// Like mlearn.StreamingClassifier, one Evaluator serves one goroutine.
type Evaluator struct {
	p *Program

	// dist is k-wide output scratch for Score/Predict/ScoreBatch.
	dist []float64
	// u and hidden are the MLP single-vector activations.
	u, hidden []float64
	// bu and bh are the MLP blocked-batch tiles (mlpBlock samples).
	bu, bh []float64
	// sub and mdist serve mixed committees: one member evaluator each
	// plus the shared member-distribution scratch, mirroring the
	// interpreted ensembles' single scratch buffer.
	sub   []*Evaluator
	mdist []float64
}

// NewEvaluator builds an evaluation context for p with all scratch
// preallocated.
func (p *Program) NewEvaluator() *Evaluator {
	e := &Evaluator{p: p, dist: make([]float64, p.classes)}
	switch p.kind {
	case kindMLP:
		mp := p.mlp
		e.u = make([]float64, mp.in)
		e.hidden = make([]float64, mp.hid)
		e.bu = make([]float64, mlpBlock*mp.in)
		e.bh = make([]float64, mlpBlock*mp.hid)
	case kindBoostCommittee, kindBagCommittee:
		e.sub = make([]*Evaluator, len(p.members))
		for i, m := range p.members {
			e.sub[i] = m.NewEvaluator()
		}
		e.mdist = make([]float64, p.classes)
	}
	return e
}

// Program returns the shared compiled program this evaluator runs.
func (e *Evaluator) Program() *Program { return e.p }

// NumClasses implements BatchClassifier without evaluating anything.
func (e *Evaluator) NumClasses() int { return e.p.classes }

// Distribution implements mlearn.Classifier (allocates; use
// DistributionInto on the hot path).
func (e *Evaluator) Distribution(x []float64) []float64 {
	out := make([]float64, e.p.classes)
	e.DistributionInto(x, out)
	return out
}

// DistributionInto implements mlearn.StreamingClassifier: it writes the
// exact distribution the interpreted model would produce into
// out[:NumClasses()].
func (e *Evaluator) DistributionInto(x, out []float64) {
	switch e.p.kind {
	case kindTree:
		e.p.forest.singleInto(x, out)
	case kindBoostForest:
		e.p.forest.boostedInto(x, out)
	case kindBagForest:
		e.p.forest.baggedInto(x, out)
	case kindLinear, kindLogistic:
		e.p.linear.into(x, out)
	case kindMLP:
		e.p.mlp.into(x, e.u, e.hidden, out)
	case kindBayes:
		e.p.bayes.into(x, out)
	case kindOneR:
		e.p.oner.into(x, out)
	case kindRules:
		e.p.rules.into(x, out)
	case kindBoostCommittee:
		e.boostCommitteeInto(x, out)
	case kindBagCommittee:
		e.bagCommitteeInto(x, out)
	}
}

// Score returns P(class 1), matching mlearn.ScoreWith's semantics
// (including the degenerate <2-class guard), with zero allocations.
func (e *Evaluator) Score(x []float64) float64 {
	e.DistributionInto(x, e.dist)
	if len(e.dist) < 2 {
		return 0
	}
	return e.dist[1]
}

// Predict returns the argmax class with mlearn.PredictWith's tie rule
// (lowest index wins), with zero allocations.
func (e *Evaluator) Predict(x []float64) int {
	e.DistributionInto(x, e.dist)
	best, bestP := 0, math.Inf(-1)
	for i, p := range e.dist {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// ScoreBatch scores every row of xs into out (allocated only when nil)
// and returns out. MLPs run the blocked matrix-matrix kernel and
// forests a fused per-row loop with the kind dispatch hoisted out;
// every other family scores row by row through its flat single-vector
// kernel (already branch-light and pointer-free, so tiling buys them
// nothing).
func (e *Evaluator) ScoreBatch(xs [][]float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(xs))
	}
	switch e.p.kind {
	case kindMLP:
		e.p.mlp.scoreBatch(xs, out[:len(xs)], e.bu, e.bh, e.dist)
	case kindTree, kindBoostForest, kindBagForest:
		e.p.forest.scoreBatch(e.p.kind, xs, out[:len(xs)], e.dist)
	default:
		for i, x := range xs {
			out[i] = e.Score(x)
		}
	}
	return out
}

// boostCommitteeInto is ensemble.BoostedModel.DistributionInto with
// each member's prediction produced by its compiled sub-evaluator: the
// member distribution lands in the shared mdist scratch, the argmax
// uses PredictWith's exact loop, and the vote accumulation and
// normalisation follow the interpreted schedule.
func (e *Evaluator) boostCommitteeInto(x, out []float64) {
	k := e.p.classes
	votes := out[:k]
	for i := range votes {
		votes[i] = 0
	}
	for i, sub := range e.sub {
		sub.DistributionInto(x, e.mdist)
		best, bestP := 0, math.Inf(-1)
		for c, p := range e.mdist {
			if p > bestP {
				best, bestP = c, p
			}
		}
		votes[best] += e.p.alphas[i]
	}
	total := 0.0
	for _, v := range votes {
		total += v
	}
	if total <= 0 {
		for i := range votes {
			votes[i] = 1 / float64(k)
		}
		return
	}
	for i := range votes {
		votes[i] /= total
	}
}

// bagCommitteeInto is ensemble.BaggedModel.DistributionInto with
// compiled members: accumulate each member's distribution in member
// order, then divide by the member count.
func (e *Evaluator) bagCommitteeInto(x, out []float64) {
	k := e.p.classes
	avg := out[:k]
	for c := range avg {
		avg[c] = 0
	}
	for _, sub := range e.sub {
		sub.DistributionInto(x, e.mdist)
		for c, p := range e.mdist {
			avg[c] += p
		}
	}
	for c := range avg {
		avg[c] /= float64(len(e.sub))
	}
}
