// Package compiled lowers *trained* classifiers into flattened,
// cache-contiguous, branch-light evaluation programs — mirroring in
// software what the hls package does for hardware (§4.4 of the paper:
// a trained detector becomes fixed comparator trees, MAC arrays and
// lookup tables precisely because interpreted per-sample evaluation is
// too slow for 10 ms run-time detection).
//
// The contract is strict bit-identical equivalence: for every input
// vector, a compiled program produces exactly the float64 distribution
// the interpreted model produces, operation for operation. Lowerings
// therefore reorganise *memory* (pointer trees become index arrays,
// [][]float64 weight matrices become row-major slices, CPTs become one
// packed table) but never reorder or refactor the floating-point
// schedule. Anything that cannot be lowered under that contract (KNN's
// stored corpus, unknown model types) fails with ErrUnsupported and the
// caller keeps the interpreted path.
//
// A Program is immutable after Compile and safe to share across
// goroutines (fleet shards and sibling chains alias one Program). All
// mutable evaluation scratch lives in an Evaluator — one per goroutine,
// exactly the ownership rule of mlearn.StreamingClassifier.
package compiled

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// ErrUnsupported marks a model the compiler cannot lower bit-identically
// (stored-corpus KNN, specialized ensembles, unknown types). Callers
// fall back to the interpreted model.
var ErrUnsupported = errors.New("compiled: unsupported model")

// BatchClassifier is what a compiled evaluation context offers the
// batched scoring path: the streaming classifier contract plus batch
// scoring and a probe-free class count. Evaluator implements it.
type BatchClassifier interface {
	mlearn.StreamingClassifier
	// NumClasses reports the class count without evaluating anything.
	NumClasses() int
	// Score returns P(class 1) for one vector, allocation-free.
	Score(x []float64) float64
	// Predict returns the argmax class (ties toward the lower index).
	Predict(x []float64) int
	// ScoreBatch scores every row of xs into out (allocating out only
	// when nil) and returns out.
	ScoreBatch(xs [][]float64, out []float64) []float64
}

// kind discriminates the lowered program families.
type kind uint8

const (
	kindTree kind = iota // single flattened decision tree
	kindBoostForest      // AdaBoost over trees, fused weighted-vote pass
	kindBagForest        // Bagging over trees, fused averaging pass
	kindLinear           // SGD/SMO: fused scale+dot, hard output
	kindLogistic         // linear datapath + sigmoid output
	kindMLP              // row-major matrices, blocked batch evaluation
	kindBayes            // packed CPT + cut tables
	kindOneR             // threshold ladder
	kindRules            // flattened ordered rule list
	kindBoostCommittee   // AdaBoost over mixed compiled members
	kindBagCommittee     // Bagging over mixed compiled members
)

func (k kind) String() string {
	switch k {
	case kindTree:
		return "tree"
	case kindBoostForest:
		return "boosted-forest"
	case kindBagForest:
		return "bagged-forest"
	case kindLinear:
		return "linear"
	case kindLogistic:
		return "logistic"
	case kindMLP:
		return "mlp"
	case kindBayes:
		return "bayes"
	case kindOneR:
		return "oner"
	case kindRules:
		return "rules"
	case kindBoostCommittee:
		return "boosted-committee"
	case kindBagCommittee:
		return "bagged-committee"
	}
	return "unknown"
}

// Census counts the structural operators of a compiled program — the
// software twin of the hls package's hardware operator inventory. The
// two are computed independently (hls walks the pointer-linked trained
// structures, this package counts its flattened arrays) and a test
// asserts they agree for every zoo model, so the lowerings cannot
// drift apart.
type Census struct {
	// Comparators counts threshold tests: tree internal nodes, rule
	// conditions, discretizer bin-ladder steps, OneR interval cuts.
	Comparators int
	// Leaves counts decision-tree leaf nodes.
	Leaves int
	// MACs counts multiply-accumulates per evaluation: linear weights,
	// MLP weights across both layers.
	MACs int
	// Sigmoids counts sigmoid units (MLP neurons, logistic output).
	Sigmoids int
	// TableWords counts lookup-table entries (CPT entries + priors).
	TableWords int
	// Submodels counts ensemble members (1 for a plain model).
	Submodels int
}

// add accumulates other into c (used for ensemble censuses).
func (c *Census) add(other Census) {
	c.Comparators += other.Comparators
	c.Leaves += other.Leaves
	c.MACs += other.MACs
	c.Sigmoids += other.Sigmoids
	c.TableWords += other.TableWords
}

// Program is an immutable compiled model: flat arrays, no pointers to
// chase, no interface dispatch on the hot path. Share one Program
// across any number of goroutines; evaluate through per-goroutine
// Evaluators.
type Program struct {
	kind    kind
	classes int

	forest *forestProgram
	linear *linearProgram
	mlp    *mlpProgram
	bayes  *bayesProgram
	oner   *onerProgram
	rules  *rulesProgram

	// committee members (kindBoostCommittee / kindBagCommittee); alphas
	// are the boosted vote weights.
	members []*Program
	alphas  []float64

	census Census
}

// NumClasses reports the program's class count, statically — no model
// probe, so it is safe to call while other goroutines evaluate.
func (p *Program) NumClasses() int { return p.classes }

// Kind names the lowered program family ("boosted-forest", "mlp", ...).
func (p *Program) Kind() string { return p.kind.String() }

// Census returns the program's structural operator counts.
func (p *Program) Census() Census { return p.census }

// compileCount counts top-level Compile calls — the test hook that pins
// compile-once-per-template sharing across replicas and siblings.
var compileCount atomic.Int64

// CompileCount returns the number of top-level Compile invocations in
// this process. Tests snapshot it around replica/sibling construction
// to prove compiled artifacts are shared rather than rebuilt.
func CompileCount() int64 { return compileCount.Load() }

// Compile lowers a trained classifier into an immutable Program. The
// result evaluates bit-identically to the model's own
// Distribution/DistributionInto. Models that cannot be lowered under
// that guarantee return an error wrapping ErrUnsupported.
func Compile(c mlearn.Classifier) (*Program, error) {
	compileCount.Add(1)
	return compile(c)
}

// compile is the recursive lowering entry (ensemble members come
// through here without bumping the top-level counter).
func compile(c mlearn.Classifier) (*Program, error) {
	switch m := c.(type) {
	case *j48.Model:
		return compileTree(m.Root)
	case *reptree.Model:
		return compileTree(m.Root)
	case *ensemble.BoostedModel:
		return compileBoosted(m)
	case *ensemble.BaggedModel:
		return compileBagged(m)
	case *sgd.Model:
		return compileLinear(m.Scaler, m.Weights, m.Bias, false)
	case *smo.Model:
		return compileLinear(m.Scaler, m.Weights, m.Bias, false)
	case *logistic.Model:
		return compileLinear(m.Scaler, m.Weights, m.Bias, true)
	case *mlp.Model:
		return compileMLP(m)
	case *bayesnet.Model:
		return compileBayes(m)
	case *oner.Model:
		return compileOneR(m)
	case *jrip.Model:
		return compileRules(m)
	}
	return nil, fmt.Errorf("%w: %T", ErrUnsupported, c)
}

// compileBoosted lowers an AdaBoost committee: all-tree committees fuse
// into one flattened forest scored in a single weighted-vote pass;
// mixed committees compile each member and keep the vote loop.
func compileBoosted(m *ensemble.BoostedModel) (*Program, error) {
	if len(m.Models) == 0 || len(m.Alphas) != len(m.Models) || m.NumClasses < 1 {
		return nil, fmt.Errorf("%w: malformed boosted ensemble", ErrUnsupported)
	}
	if roots := treeRoots(m.Models); roots != nil {
		fp, err := flattenForest(roots, m.NumClasses)
		if err != nil {
			return nil, err
		}
		fp.alphas = append([]float64(nil), m.Alphas...)
		p := &Program{kind: kindBoostForest, classes: m.NumClasses, forest: fp}
		p.census = fp.censusOf()
		return p, nil
	}
	members, census, err := compileMembers(m.Models, m.NumClasses)
	if err != nil {
		return nil, err
	}
	p := &Program{
		kind:    kindBoostCommittee,
		classes: m.NumClasses,
		members: members,
		alphas:  append([]float64(nil), m.Alphas...),
		census:  census,
	}
	return p, nil
}

// compileBagged lowers a Bagging committee the same way: all-tree bags
// fuse into one forest averaged in a single pass.
func compileBagged(m *ensemble.BaggedModel) (*Program, error) {
	if len(m.Models) == 0 || m.NumClasses < 1 {
		return nil, fmt.Errorf("%w: malformed bagged ensemble", ErrUnsupported)
	}
	if roots := treeRoots(m.Models); roots != nil {
		fp, err := flattenForest(roots, m.NumClasses)
		if err != nil {
			return nil, err
		}
		p := &Program{kind: kindBagForest, classes: m.NumClasses, forest: fp}
		p.census = fp.censusOf()
		return p, nil
	}
	members, census, err := compileMembers(m.Models, m.NumClasses)
	if err != nil {
		return nil, err
	}
	p := &Program{kind: kindBagCommittee, classes: m.NumClasses, members: members, census: census}
	return p, nil
}

// treeRoots returns the member tree roots when every committee member
// is a plain decision tree (the fused-forest fast path), nil otherwise.
func treeRoots(models []mlearn.Classifier) []*mlearn.TreeNode {
	roots := make([]*mlearn.TreeNode, len(models))
	for i, m := range models {
		switch t := m.(type) {
		case *j48.Model:
			roots[i] = t.Root
		case *reptree.Model:
			roots[i] = t.Root
		default:
			return nil
		}
		if roots[i] == nil {
			return nil
		}
	}
	return roots
}

// compileMembers lowers every committee member, verifying each agrees
// on the class count; one uncompilable member fails the whole ensemble
// (which then stays interpreted — a half-compiled committee could not
// be bit-identical).
func compileMembers(models []mlearn.Classifier, classes int) ([]*Program, Census, error) {
	members := make([]*Program, len(models))
	census := Census{Submodels: len(models)}
	for i, m := range models {
		p, err := compile(m)
		if err != nil {
			return nil, Census{}, fmt.Errorf("member %d: %w", i, err)
		}
		if p.classes != classes {
			return nil, Census{}, fmt.Errorf("%w: member %d has %d classes, ensemble has %d",
				ErrUnsupported, i, p.classes, classes)
		}
		members[i] = p
		census.add(p.census)
	}
	return members, census, nil
}
