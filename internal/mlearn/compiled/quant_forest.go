package compiled

import (
	"fmt"
	"math"
)

// qnode is one quantized tree node, 12 bytes against fnode's 24.
//
//	internal: test qx[attr] >= thr and step to kids[1] (true — the
//	          interpreted right branch) or kids[0] (false — left).
//	leaf:     thr is qLeafThr (a value no real threshold can take, so
//	          the test qx[attr] >= thr is always true and the node
//	          self-loops through kids[1]); kids[0] carries the leaf
//	          payload — the packed-distribution slot for single trees
//	          and bagged forests, the precomputed argmax class for
//	          boosted forests.
//
// The leaf's sentinel threshold is the walk's exit test (one
// well-predicted compare per step), and the self-loop through kids[1]
// makes stepping a parked lane harmless — the batch walker's refill
// logic relies on both.
type qnode struct {
	thr  int16
	attr int16
	kids [2]int32
}

// qLeafThr marks leaves. Real thresholds clamp to +-qThrMax, and every
// quantized input is >= qInfNeg > qLeafThr, so the leaf's compare is
// unconditionally true.
const qLeafThr = math.MinInt16

// qforestProgram is the fixed-point forest: the same flattened node
// array as forestProgram with float comparisons replaced by int16 ones.
// Inputs quantize once per row through a per-attribute affine map
// derived from the attribute's threshold span across the whole forest.
type qforestProgram struct {
	k     int
	roots []int32
	nodes []qnode
	// width is the number of input attributes the forest reads.
	width int
	// mid/scale define the per-attribute quantization q(v) =
	// round((v-mid[j])*scale[j]) (clamped); scale 0 means the attribute
	// is never tested and quantizes to 0.
	mid, scale []float64
	// dists is the packed leaf-distribution table in Q15
	// (single/bagged); alphas are the boosted vote weights in Q16.
	dists  []int32
	alphas []int64
	// sumAlpha = sum(alphas): every boosted tree votes exactly once, so
	// the vote total is input-independent and its reciprocal (and the
	// bagged averaging reciprocal) hoist out of the per-sample path.
	sumAlpha         int64
	invBoost, invBag float64
}

// quantizeForest converts a compiled tree/forest program to fixed
// point.
func quantizeForest(p *Program) (*QuantProgram, error) {
	fp := p.forest
	// Pass 1: per-attribute threshold spans, input width, depth.
	width := 0
	type span struct {
		lo, hi float64
		seen   bool
	}
	var spans []span
	for i := range fp.nodes {
		nd := &fp.nodes[i]
		if nd.attr < 0 {
			continue
		}
		if nd.attr > math.MaxInt16 {
			return nil, fmt.Errorf("%w: forest attribute %d exceeds int16", ErrUnsupported, nd.attr)
		}
		if math.IsNaN(nd.thr) || math.IsInf(nd.thr, 0) {
			return nil, fmt.Errorf("%w: non-finite tree threshold", ErrUnsupported)
		}
		a := int(nd.attr)
		if a >= width {
			width = a + 1
		}
		for len(spans) <= a {
			spans = append(spans, span{})
		}
		s := &spans[a]
		if !s.seen {
			s.lo, s.hi, s.seen = nd.thr, nd.thr, true
		} else {
			s.lo = math.Min(s.lo, nd.thr)
			s.hi = math.Max(s.hi, nd.thr)
		}
	}
	qf := &qforestProgram{
		k:     fp.k,
		roots: append([]int32(nil), fp.roots...),
		nodes: make([]qnode, len(fp.nodes)),
		width: width,
		mid:   make([]float64, width),
		scale: make([]float64, width),
	}
	for a := range spans {
		s := &spans[a]
		if !s.seen {
			continue
		}
		qf.mid[a] = s.lo + (s.hi-s.lo)/2
		if w := s.hi - s.lo; w > 0 {
			qf.scale[a] = (2 * qThrMax) / w
		} else {
			// One distinct threshold: any positive scale preserves the
			// ordering of values at least half a raw unit away from it
			// (HPC deltas are integer-valued, so in practice all of
			// them).
			qf.scale[a] = 1
		}
	}
	// Pass 2: nodes. The index layout is identical, so child links copy
	// through.
	boosted := p.kind == kindBoostForest
	for i := range fp.nodes {
		nd := &fp.nodes[i]
		if nd.attr >= 0 {
			qt := math.Round((nd.thr - qf.mid[nd.attr]) * qf.scale[nd.attr])
			if qt > qThrMax {
				qt = qThrMax
			} else if qt < -qThrMax {
				qt = -qThrMax
			}
			qf.nodes[i] = qnode{thr: int16(qt), attr: int16(nd.attr), kids: [2]int32{nd.left, nd.right}}
			continue
		}
		payload := nd.left // distribution slot
		if boosted {
			payload = nd.right // precomputed argmax
		}
		qf.nodes[i] = qnode{thr: qLeafThr, attr: 0, kids: [2]int32{payload, int32(i)}}
	}
	if !boosted {
		qf.dists = make([]int32, len(fp.dists))
		for i, d := range fp.dists {
			qf.dists[i] = int32(math.Round(d * qOne15))
		}
		qf.invBag = 1 / (qOne15 * float64(len(fp.roots)))
	} else {
		qf.alphas = make([]int64, len(fp.alphas))
		for i, a := range fp.alphas {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				return nil, fmt.Errorf("%w: non-finite boosted vote weight", ErrUnsupported)
			}
			qf.alphas[i] = int64(math.Round(a * qOne16))
			qf.sumAlpha += qf.alphas[i]
		}
		if qf.sumAlpha > 0 {
			qf.invBoost = 1 / float64(qf.sumAlpha)
		}
	}
	return &QuantProgram{kind: p.kind, classes: p.classes, forest: qf, census: p.census}, nil
}

// quantizeRow quantizes one input row into qx. NaN and +Inf saturate
// positive (the interpreted walk sends NaN right at every test, which
// is exactly where qInfPos goes), -Inf saturates negative, and finite
// values clamp to +-qClamp — outside every threshold, so a clamped
// value still takes the branch its float would.
func (qf *qforestProgram) quantizeRow(x []float64, qx []int16) {
	for j := 0; j < qf.width; j++ {
		t := (x[j] - qf.mid[j]) * qf.scale[j]
		switch {
		case t != t: // NaN input (or +-Inf on an untested attribute)
			qx[j] = qInfPos
		case t >= qClamp:
			qx[j] = qInfPos
		case t <= -qClamp:
			qx[j] = qInfNeg
		default:
			// Round half away from zero as a copysign-and-truncate —
			// int16(float) truncates, so adding a half toward the value's
			// sign is math.Round without the function call (measured ~4 ns
			// per attribute on this path).
			qx[j] = int16(t + math.Copysign(0.5, t))
		}
	}
}

// leafOf walks tree t for one quantized row and returns the reached
// leaf's payload (kids[0]: distribution slot or precomputed argmax) —
// returning the payload rather than the node index saves every caller
// a second dereference of the leaf node. The child select is a real
// branch, not a conditional move: a branch lets the core *speculate*
// down the predicted path and issue the next node load before the
// compare resolves, so the walk runs at prediction speed instead of
// serialising on the load-compare-select chain. (A branchless CMOV
// variant was benchmarked here and was ~2.5x slower — every step
// waited out the full L1 load-to-use latency.)
func (qf *qforestProgram) leafOf(t int, qx []int16) int32 {
	nodes := qf.nodes
	n := qf.roots[t]
	for {
		nd := &nodes[n]
		thr := nd.thr
		if thr == qLeafThr {
			return nd.kids[0]
		}
		if qx[nd.attr] >= thr {
			n = nd.kids[1]
			continue
		}
		n = nd.kids[0]
	}
}

// singleInto scores a one-tree program (quantized leaf distribution,
// dequantized on output).
func (qf *qforestProgram) singleInto(qx []int16, out []float64) {
	slot := int(qf.leafOf(0, qx)) * qf.k
	for c := 0; c < qf.k; c++ {
		out[c] = float64(qf.dists[slot+c]) * (1.0 / qOne15)
	}
}

// boostedInto is the fused integer vote pass: walk each tree to its
// leaf, add its Q16 alpha to the precomputed argmax class, scale by the
// hoisted vote-total reciprocal at the end. The batch kernel calls this
// same function, so batch and single scores stay bit-identical. The
// malware-detector case (two classes) keeps both vote cells in
// registers; wider class counts fall back to the votes slice.
func (qf *qforestProgram) boostedInto(qx []int16, votes []int64, out []float64) {
	k := qf.k
	if k == 2 {
		var v0, v1 int64
		for t := range qf.roots {
			if qf.leafOf(t, qx) == 1 {
				v1 += qf.alphas[t]
			} else {
				v0 += qf.alphas[t]
			}
		}
		if qf.sumAlpha <= 0 {
			out[0], out[1] = 0.5, 0.5
			return
		}
		out[0] = float64(v0) * qf.invBoost
		out[1] = float64(v1) * qf.invBoost
		return
	}
	v := votes[:k]
	for i := range v {
		v[i] = 0
	}
	for t := range qf.roots {
		v[qf.leafOf(t, qx)] += qf.alphas[t]
	}
	if qf.sumAlpha <= 0 {
		for i := range out[:k] {
			out[i] = 1 / float64(k)
		}
		return
	}
	for i, x := range v {
		out[i] = float64(x) * qf.invBoost
	}
}

// baggedInto accumulates the Q15 leaf distributions in int64 and
// applies the hoisted 1/(one*members) averaging reciprocal once, with
// the same two-class register fast path as boostedInto.
func (qf *qforestProgram) baggedInto(qx []int16, votes []int64, out []float64) {
	k := qf.k
	if k == 2 {
		var v0, v1 int64
		for t := range qf.roots {
			slot := int(qf.leafOf(t, qx)) * 2
			v0 += int64(qf.dists[slot])
			v1 += int64(qf.dists[slot+1])
		}
		out[0] = float64(v0) * qf.invBag
		out[1] = float64(v1) * qf.invBag
		return
	}
	v := votes[:k]
	for i := range v {
		v[i] = 0
	}
	for t := range qf.roots {
		slot := int(qf.leafOf(t, qx)) * k
		d := qf.dists[slot : slot+k]
		for c, p := range d {
			v[c] += int64(p)
		}
	}
	for i, x := range v {
		out[i] = float64(x) * qf.invBag
	}
}

// scoreBatch is the batched quantized forest kernel: quantize each row
// once, run the branchy walks, and fuse the integer vote accumulation
// (hoisted reciprocals and all) exactly as the single-vector path does
// — it *is* the single-vector path minus the per-call dispatch, so
// batch and single scores are bit-identical by construction.
//
// Two batch schedules were benchmarked here and rejected, mirroring
// the compiled tier's findings: a fixed-group sample-lockstep walk
// with register-resident lanes and a persistent-lane walker with
// leaf-refill. Both lost ~40% to this loop — at HPC-detector tree
// sizes the forest lives in L1 and the branchy walk runs at
// branch-prediction speed, so hand-scheduled lane ILP only added
// bookkeeping to a core that was already speculating across samples.
func (qf *qforestProgram) scoreBatch(kd kind, xs [][]float64, out []float64, qx []int16, votes []int64, dist []float64) {
	if qf.k < 2 {
		for i := range xs {
			out[i] = 0
		}
		return
	}
	switch kd {
	case kindTree:
		for i, x := range xs {
			qf.quantizeRow(x, qx)
			slot := int(qf.leafOf(0, qx)) * qf.k
			out[i] = float64(qf.dists[slot+1]) * (1.0 / qOne15)
		}
	case kindBoostForest:
		for i, x := range xs {
			qf.quantizeRow(x, qx)
			qf.boostedInto(qx, votes, dist)
			out[i] = dist[1]
		}
	default: // kindBagForest
		for i, x := range xs {
			qf.quantizeRow(x, qx)
			qf.baggedInto(qx, votes, dist)
			out[i] = dist[1]
		}
	}
}
