package compiled_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/knn"
	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/zoo"
)

// trained is one (label, model) pair of the equivalence corpus.
type trained struct {
	label string
	model mlearn.Classifier
}

var (
	corpusOnce sync.Once
	corpus     []trained
	trainSet   *dataset.Instances
	testSet    *dataset.Instances
)

// buildCorpus trains every zoo detector kind (8 names x 3 variants)
// plus the Logistic baseline on a small synthetic set — the full
// compile surface.
func buildCorpus(t *testing.T) []trained {
	t.Helper()
	corpusOnce.Do(func() {
		trainSet = mltest.Blobs(120, 1.0, 7)
		testSet = mltest.Blobs(90, 1.0, 9)
		for _, name := range zoo.Names() {
			for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
				tr, err := zoo.NewVariantOpts(name, v, zoo.Options{Iterations: 5, Seed: 3})
				if err != nil {
					panic(err)
				}
				m, err := tr.Train(trainSet, nil)
				if err != nil {
					panic(fmt.Sprintf("train %s/%s: %v", name, v, err))
				}
				corpus = append(corpus, trained{fmt.Sprintf("%s/%s", name, v), m})
			}
		}
		tr, err := zoo.New("Logistic", 3)
		if err != nil {
			panic(err)
		}
		m, err := tr.Train(trainSet, nil)
		if err != nil {
			panic(err)
		}
		corpus = append(corpus, trained{"Logistic/General", m})
	})
	return corpus
}

// probeVectors returns the test rows plus out-of-range extremes (the
// clamp and degenerate paths must agree too).
func probeVectors() [][]float64 {
	xs := make([][]float64, 0, len(testSet.X)+4)
	xs = append(xs, testSet.X...)
	width := testSet.NumAttrs()
	zero := make([]float64, width)
	big := make([]float64, width)
	neg := make([]float64, width)
	mix := make([]float64, width)
	for j := 0; j < width; j++ {
		big[j] = 1e9
		neg[j] = -1e9
		if j%2 == 0 {
			mix[j] = 1e6
		} else {
			mix[j] = -3.5
		}
	}
	return append(xs, zero, big, neg, mix)
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCompiledBitIdentical is the core equivalence gate: for every zoo
// model and every probe vector, the compiled evaluator's distribution,
// score and prediction are bit-for-bit those of the interpreted model.
func TestCompiledBitIdentical(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		t.Run(tc.label, func(t *testing.T) {
			prog, err := compiled.Compile(tc.model)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			k := prog.NumClasses()
			if probe := len(tc.model.Distribution(make([]float64, testSet.NumAttrs()))); probe != k {
				t.Fatalf("NumClasses: compiled %d, interpreted %d", k, probe)
			}
			ev := prog.NewEvaluator()
			scratch := make([]float64, k)
			got := make([]float64, k)
			for i, x := range probeVectors() {
				want := tc.model.Distribution(x)
				ev.DistributionInto(x, got)
				if !sameBits(want, got) {
					t.Fatalf("vector %d: distribution mismatch\ninterpreted %v\ncompiled    %v", i, want, got)
				}
				if !sameBits(want, ev.Distribution(x)) {
					t.Fatalf("vector %d: Distribution mismatch", i)
				}
				if ws, gs := mlearn.ScoreWith(tc.model, x, scratch), ev.Score(x); math.Float64bits(ws) != math.Float64bits(gs) {
					t.Fatalf("vector %d: score %v (interpreted) != %v (compiled)", i, ws, gs)
				}
				if wp, gp := mlearn.PredictWith(tc.model, x, scratch), ev.Predict(x); wp != gp {
					t.Fatalf("vector %d: predict %d (interpreted) != %d (compiled)", i, wp, gp)
				}
			}
		})
	}
}

// TestScoreBatchMatchesRowByRow pins the batched kernels (including the
// blocked MLP tiles, whose loop nest differs from the single-vector
// path) to the interpreted per-row scores at several batch shapes.
func TestScoreBatchMatchesRowByRow(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		t.Run(tc.label, func(t *testing.T) {
			prog, err := compiled.Compile(tc.model)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			ev := prog.NewEvaluator()
			scratch := make([]float64, prog.NumClasses())
			xs := probeVectors()
			for _, n := range []int{1, 3, 16, 17, len(xs)} {
				batch := xs[:n]
				out := ev.ScoreBatch(batch, make([]float64, n))
				for i, x := range batch {
					want := mlearn.ScoreWith(tc.model, x, scratch)
					if math.Float64bits(want) != math.Float64bits(out[i]) {
						t.Fatalf("batch %d row %d: %v (interpreted) != %v (compiled)", n, i, want, out[i])
					}
				}
			}
			if got := ev.ScoreBatch(xs[:4], nil); len(got) != 4 {
				t.Fatalf("nil out: got len %d", len(got))
			}
		})
	}
}

// TestProgramSharedAcrossEvaluators runs many evaluators over one
// Program concurrently — the sharing model fleet shards rely on; run
// under -race this pins that Programs are read-only after compile.
func TestProgramSharedAcrossEvaluators(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		prog, err := compiled.Compile(tc.model)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		want := prog.NewEvaluator().ScoreBatch(testSet.X, nil)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ev := prog.NewEvaluator()
				got := ev.ScoreBatch(testSet.X, nil)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Errorf("%s: concurrent evaluator diverged at row %d", tc.label, i)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestFusedForestKinds verifies all-tree ensembles fuse into single
// forest programs instead of member committees.
func TestFusedForestKinds(t *testing.T) {
	buildCorpus(t)
	wantKind := map[string]string{
		"J48/General":     "tree",
		"REPTree/General": "tree",
		"J48/Boosted":     "boosted-forest",
		"REPTree/Boosted": "boosted-forest",
		"J48/Bagging":     "bagged-forest",
		"REPTree/Bagging": "bagged-forest",
		"MLP/General":     "mlp",
		"MLP/Bagging":     "bagged-committee",
		"SMO/Boosted":     "boosted-committee",
		"BayesNet/General": "bayes",
		"OneR/General":     "oner",
		"JRip/General":     "rules",
		"SGD/General":      "linear",
		"Logistic/General": "logistic",
	}
	for _, tc := range corpus {
		want, ok := wantKind[tc.label]
		if !ok {
			continue
		}
		prog, err := compiled.Compile(tc.model)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if prog.Kind() != want {
			t.Errorf("%s: compiled to %q, want %q", tc.label, prog.Kind(), want)
		}
	}
}

// TestUnsupportedModels pins the interpreted-fallback contract: KNN
// (stored corpus), unknown types, and committees containing either all
// fail with ErrUnsupported.
func TestUnsupportedModels(t *testing.T) {
	buildCorpus(t)
	km, err := knn.New().Train(trainSet, nil)
	if err != nil {
		t.Fatalf("train KNN: %v", err)
	}
	cases := map[string]mlearn.Classifier{
		"knn":     km,
		"unknown": fakeModel{},
		"boosted-with-knn": &ensemble.BoostedModel{
			Models: []mlearn.Classifier{km}, Alphas: []float64{1}, NumClasses: 2,
		},
		"bagged-with-unknown": &ensemble.BaggedModel{
			Models: []mlearn.Classifier{fakeModel{}}, NumClasses: 2,
		},
	}
	for label, m := range cases {
		if _, err := compiled.Compile(m); !errors.Is(err, compiled.ErrUnsupported) {
			t.Errorf("%s: got err %v, want ErrUnsupported", label, err)
		}
	}
}

type fakeModel struct{}

func (fakeModel) Distribution(x []float64) []float64 { return []float64{0.5, 0.5} }

// TestCompileCount verifies the top-level counter ticks once per
// Compile regardless of committee depth — the hook the share-once
// replica tests build on.
func TestCompileCount(t *testing.T) {
	models := buildCorpus(t)
	before := compiled.CompileCount()
	for _, tc := range models {
		if _, err := compiled.Compile(tc.model); err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
	}
	if got := compiled.CompileCount() - before; got != int64(len(models)) {
		t.Fatalf("CompileCount advanced by %d, want %d", got, len(models))
	}
}
