package compiled_test

import (
	"testing"

	"repro/internal/mlearn/compiled"
)

// TestEvaluatorZeroAlloc gates the hot path: once an Evaluator exists,
// Score, Predict, DistributionInto and a preallocated ScoreBatch must
// not allocate for any compiled family — the same 0 allocs/interval
// contract the fleet engine enforces end to end.
func TestEvaluatorZeroAlloc(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		t.Run(tc.label, func(t *testing.T) {
			prog, err := compiled.Compile(tc.model)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			ev := prog.NewEvaluator()
			dist := make([]float64, prog.NumClasses())
			xs := testSet.X[:32]
			out := make([]float64, len(xs))
			// Warm once (nothing is lazily sized, but keep the gate
			// honest about steady state).
			ev.Score(xs[0])
			ev.ScoreBatch(xs, out)

			if n := testing.AllocsPerRun(200, func() { ev.Score(xs[1]) }); n != 0 {
				t.Errorf("Score allocates %.1f/op", n)
			}
			if n := testing.AllocsPerRun(200, func() { ev.Predict(xs[1]) }); n != 0 {
				t.Errorf("Predict allocates %.1f/op", n)
			}
			if n := testing.AllocsPerRun(200, func() { ev.DistributionInto(xs[1], dist) }); n != 0 {
				t.Errorf("DistributionInto allocates %.1f/op", n)
			}
			if n := testing.AllocsPerRun(50, func() { ev.ScoreBatch(xs, out) }); n != 0 {
				t.Errorf("ScoreBatch allocates %.1f/op", n)
			}
		})
	}
}
