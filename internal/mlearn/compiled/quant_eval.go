package compiled

import "math"

// QuantEvaluator is a per-goroutine evaluation context over an
// immutable shared QuantProgram — the quantized twin of Evaluator,
// implementing the same BatchClassifier contract. All scratch (input
// codes, lockstep walk fronts, integer accumulators, blocked tiles) is
// sized at construction; the steady-state paths allocate nothing.
type QuantEvaluator struct {
	p *QuantProgram

	// dist is k-wide float output scratch.
	dist []float64
	// qx holds one row's quantized input codes; acc is the int64
	// accumulator (forest votes, bayes log posteriors).
	qx  []int16
	acc []int64
	// qh is the MLP hidden activation row; bqx/bqh the blocked tiles.
	qh       []int16
	bqx, bqh []int16
	// sub and mdist serve mixed committees.
	sub   []*QuantEvaluator
	mdist []float64
}

// NewEvaluator builds a quantized evaluation context with all scratch
// preallocated.
func (p *QuantProgram) NewEvaluator() *QuantEvaluator {
	e := &QuantEvaluator{p: p, dist: make([]float64, p.classes)}
	switch p.kind {
	case kindTree, kindBoostForest, kindBagForest:
		qf := p.forest
		e.qx = make([]int16, qf.width)
		e.acc = make([]int64, qf.k)
	case kindLinear, kindLogistic:
		e.qx = make([]int16, len(p.linear.w))
	case kindMLP:
		qm := p.mlp
		e.qx = make([]int16, qm.in)
		e.qh = make([]int16, qm.hid)
		e.bqx = make([]int16, mlpBlock*qm.in)
		e.bqh = make([]int16, mlpBlock*qm.hid)
	case kindBayes:
		e.acc = make([]int64, p.bayes.k)
	case kindBoostCommittee, kindBagCommittee:
		e.sub = make([]*QuantEvaluator, len(p.members))
		for i, m := range p.members {
			e.sub[i] = m.NewEvaluator()
		}
		e.mdist = make([]float64, p.classes)
	}
	return e
}

// Program returns the shared quantized program this evaluator runs.
func (e *QuantEvaluator) Program() *QuantProgram { return e.p }

// NumClasses implements BatchClassifier without evaluating anything.
func (e *QuantEvaluator) NumClasses() int { return e.p.classes }

// Distribution implements mlearn.Classifier (allocates; use
// DistributionInto on the hot path).
func (e *QuantEvaluator) Distribution(x []float64) []float64 {
	out := make([]float64, e.p.classes)
	e.DistributionInto(x, out)
	return out
}

// DistributionInto implements mlearn.StreamingClassifier under the
// quantized tier's statistical contract: the distribution approximates
// the interpreted model's to fixed-point precision (it is not
// bit-identical — that is the compiled tier's contract).
func (e *QuantEvaluator) DistributionInto(x, out []float64) {
	switch e.p.kind {
	case kindTree:
		e.p.forest.quantizeRow(x, e.qx)
		e.p.forest.singleInto(e.qx, out)
	case kindBoostForest:
		e.p.forest.quantizeRow(x, e.qx)
		e.p.forest.boostedInto(e.qx, e.acc, out)
	case kindBagForest:
		e.p.forest.quantizeRow(x, e.qx)
		e.p.forest.baggedInto(e.qx, e.acc, out)
	case kindLinear, kindLogistic:
		e.p.linear.qi.quantizeRow(x[:len(e.qx)], e.qx)
		e.p.linear.into(e.qx, out)
	case kindMLP:
		e.p.mlp.into(x, e.qx, e.qh, out)
	case kindBayes:
		e.p.bayes.into(x, e.acc, out)
	case kindBoostCommittee:
		e.boostCommitteeInto(x, out)
	case kindBagCommittee:
		e.bagCommitteeInto(x, out)
	}
}

// Score returns P(class 1) with mlearn.ScoreWith's semantics, zero
// allocations.
func (e *QuantEvaluator) Score(x []float64) float64 {
	e.DistributionInto(x, e.dist)
	if len(e.dist) < 2 {
		return 0
	}
	return e.dist[1]
}

// Predict returns the argmax class with mlearn.PredictWith's tie rule.
func (e *QuantEvaluator) Predict(x []float64) int {
	e.DistributionInto(x, e.dist)
	best, bestP := 0, math.Inf(-1)
	for i, p := range e.dist {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// ScoreBatch scores every row of xs into out (allocated only when nil)
// and returns out, dispatching to the fused integer batch kernels.
func (e *QuantEvaluator) ScoreBatch(xs [][]float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(xs))
	}
	switch e.p.kind {
	case kindTree, kindBoostForest, kindBagForest:
		e.p.forest.scoreBatch(e.p.kind, xs, out[:len(xs)], e.qx, e.acc, e.dist)
	case kindMLP:
		e.p.mlp.scoreBatch(xs, out[:len(xs)], e.bqx, e.bqh, e.dist)
	case kindBayes:
		e.p.bayes.scoreBatch(xs, out[:len(xs)], e.acc, e.dist)
	default:
		for i, x := range xs {
			out[i] = e.Score(x)
		}
	}
	return out
}

// boostCommitteeInto mirrors Evaluator.boostCommitteeInto with
// quantized members: member distributions land in shared scratch, the
// argmax votes accumulate in float (once per member, nothing to
// quantize).
func (e *QuantEvaluator) boostCommitteeInto(x, out []float64) {
	k := e.p.classes
	votes := out[:k]
	for i := range votes {
		votes[i] = 0
	}
	for i, sub := range e.sub {
		sub.DistributionInto(x, e.mdist)
		best, bestP := 0, math.Inf(-1)
		for c, p := range e.mdist {
			if p > bestP {
				best, bestP = c, p
			}
		}
		votes[best] += e.p.alphas[i]
	}
	total := 0.0
	for _, v := range votes {
		total += v
	}
	if total <= 0 {
		for i := range votes {
			votes[i] = 1 / float64(k)
		}
		return
	}
	for i := range votes {
		votes[i] /= total
	}
}

// bagCommitteeInto mirrors Evaluator.bagCommitteeInto with quantized
// members.
func (e *QuantEvaluator) bagCommitteeInto(x, out []float64) {
	k := e.p.classes
	avg := out[:k]
	for c := range avg {
		avg[c] = 0
	}
	for _, sub := range e.sub {
		sub.DistributionInto(x, e.mdist)
		for c, p := range e.mdist {
			avg[c] += p
		}
	}
	for c := range avg {
		avg[c] /= float64(len(e.sub))
	}
}
