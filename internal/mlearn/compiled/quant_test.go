package compiled_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/logistic"
)

// quantizable reports whether a corpus label is expected to lower to
// the quantized tier: trees, tree ensembles, linear models, MLPs and
// BayesNets do; OneR and JRip (and their ensembles) stay compiled.
func quantizable(label string) bool {
	switch label[:4] {
	case "OneR", "JRip":
		return false
	}
	return true
}

// TestQuantizeCoverage pins exactly which zoo families reach the
// quantized tier and that the rest fail with ErrUnsupported (the
// per-model fallback contract).
func TestQuantizeCoverage(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		qp, err := compiled.Quantize(tc.model)
		if quantizable(tc.label) {
			if err != nil {
				t.Errorf("%s: Quantize failed: %v", tc.label, err)
			} else if qp.NumClasses() < 2 {
				t.Errorf("%s: quantized program has %d classes", tc.label, qp.NumClasses())
			}
			continue
		}
		if !errors.Is(err, compiled.ErrUnsupported) {
			t.Errorf("%s: want ErrUnsupported, got %v", tc.label, err)
		}
	}
}

// TestQuantStatisticalParity is the unit-level statistical-equivalence
// check: per model, quantized predictions agree with interpreted ones
// on nearly every test row and the mean absolute score error stays
// small. (The zoo-wide >= 99.9% pooled-parity gate lives in
// experiments.QuantEquivalence; this catches a broken kernel at the
// package level.)
func TestQuantStatisticalParity(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		if !quantizable(tc.label) {
			continue
		}
		t.Run(tc.label, func(t *testing.T) {
			qp, err := compiled.Quantize(tc.model)
			if err != nil {
				t.Fatalf("Quantize: %v", err)
			}
			ev := qp.NewEvaluator()
			scratch := make([]float64, qp.NumClasses())
			agree, n := 0, 0
			mae := 0.0
			for _, x := range testSet.X {
				if mlearn.PredictWith(tc.model, x, scratch) == ev.Predict(x) {
					agree++
				}
				mae += math.Abs(mlearn.ScoreWith(tc.model, x, scratch) - ev.Score(x))
				n++
			}
			if parity := float64(agree) / float64(n); parity < 0.95 {
				t.Errorf("verdict parity %.4f < 0.95 (%d/%d)", parity, agree, n)
			}
			if mae /= float64(n); mae > 0.02 {
				t.Errorf("mean |score delta| %.5f > 0.02", mae)
			}
		})
	}
}

// TestQuantScoreBatchMatchesSingle pins every quantized batch kernel to
// its own single-vector path bit for bit — tiling and dispatch hoisting
// must not change the arithmetic within the tier.
func TestQuantScoreBatchMatchesSingle(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		if !quantizable(tc.label) {
			continue
		}
		qp, err := compiled.Quantize(tc.model)
		if err != nil {
			t.Fatalf("%s: Quantize: %v", tc.label, err)
		}
		single, batch := qp.NewEvaluator(), qp.NewEvaluator()
		for _, size := range []int{1, 3, compiled.MLPBlockSize(), compiled.MLPBlockSize() + 5, len(testSet.X)} {
			if size > len(testSet.X) {
				size = len(testSet.X)
			}
			xs := testSet.X[:size]
			got := batch.ScoreBatch(xs, nil)
			for i, x := range xs {
				want := single.Score(x)
				if math.Float64bits(want) != math.Float64bits(got[i]) {
					t.Fatalf("%s: batch size %d row %d: single %v batch %v", tc.label, size, i, want, got[i])
				}
			}
		}
	}
}

// TestQuantCensusMatchesCompiled: quantization changes arithmetic
// widths, never structure, so the quantized census must equal the
// compiled one (which a separate test pins against hls.CensusOf).
func TestQuantCensusMatchesCompiled(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		if !quantizable(tc.label) {
			continue
		}
		p, err := compiled.Compile(tc.model)
		if err != nil {
			t.Fatalf("%s: Compile: %v", tc.label, err)
		}
		qp, err := p.Quantize()
		if err != nil {
			t.Fatalf("%s: Quantize: %v", tc.label, err)
		}
		if p.Census() != qp.Census() {
			t.Errorf("%s: census drift: compiled %+v quantized %+v", tc.label, p.Census(), qp.Census())
		}
	}
}

// TestQuantEdgeCases drives NaN, +-Inf and out-of-range features
// through every quantized model: the tier must never panic and must
// emit a usable distribution (finite, non-negative, summing to ~1 —
// the documented clamp behaviour, deliberately more defensive than the
// interpreted NaN-propagating path).
func TestQuantEdgeCases(t *testing.T) {
	width := testSet.NumAttrs()
	rows := make([][]float64, 0, 8)
	for _, fill := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e308, -1e308, 0} {
		row := make([]float64, width)
		for j := range row {
			row[j] = fill
		}
		rows = append(rows, row)
	}
	mixed := make([]float64, width)
	for j := range mixed {
		switch j % 3 {
		case 0:
			mixed[j] = math.NaN()
		case 1:
			mixed[j] = math.Inf(1)
		default:
			mixed[j] = -1e12
		}
	}
	rows = append(rows, mixed)
	for _, tc := range buildCorpus(t) {
		if !quantizable(tc.label) {
			continue
		}
		qp, err := compiled.Quantize(tc.model)
		if err != nil {
			t.Fatalf("%s: Quantize: %v", tc.label, err)
		}
		ev := qp.NewEvaluator()
		dist := make([]float64, qp.NumClasses())
		for i, x := range rows {
			ev.DistributionInto(x, dist)
			sum := 0.0
			for c, p := range dist {
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
					t.Fatalf("%s: row %d class %d: degenerate probability %v", tc.label, i, c, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-3 {
				t.Fatalf("%s: row %d: distribution sums to %v", tc.label, i, sum)
			}
			if s := ev.Score(x); math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("%s: row %d: score %v", tc.label, i, s)
			}
			if got := ev.ScoreBatch(rows[i:i+1], nil); math.IsNaN(got[0]) {
				t.Fatalf("%s: row %d: batch score NaN", tc.label, i)
			}
		}
	}
}

// TestQuantSaturationBoundaries hand-builds models sitting at the int16
// quantization boundaries: a tree whose only threshold spans the whole
// float range, a stump with a single threshold, and a logistic model
// with huge weights that drives the sigmoid LUT to its endpoints.
func TestQuantSaturationBoundaries(t *testing.T) {
	leaf := func(d ...float64) *mlearn.TreeNode { return &mlearn.TreeNode{Leaf: true, Dist: d} }
	t.Run("huge-threshold-span", func(t *testing.T) {
		// Thresholds at +-1e300: the affine map must keep ordering for
		// values on either side without overflowing int16.
		root := &mlearn.TreeNode{
			Attr: 0, Threshold: -1e300,
			Left: leaf(1, 0),
			Right: &mlearn.TreeNode{
				Attr: 0, Threshold: 1e300,
				Left:  leaf(0.25, 0.75),
				Right: leaf(0, 1),
			},
		}
		qp, err := compiled.Quantize(&j48.Model{Root: root})
		if err != nil {
			t.Fatalf("Quantize: %v", err)
		}
		ev := qp.NewEvaluator()
		for _, tt := range []struct {
			v    float64
			want float64
		}{
			{-1e305, 0}, {0, 0.75}, {1e305, 1},
			{math.Inf(-1), 0}, {math.Inf(1), 1}, {math.NaN(), 1},
		} {
			if got := ev.Score([]float64{tt.v}); math.Abs(got-tt.want) > 1e-4 {
				t.Errorf("x=%v: score %v, want %v", tt.v, got, tt.want)
			}
		}
	})
	t.Run("single-threshold", func(t *testing.T) {
		// One distinct threshold: the span is zero and unit scale takes
		// over; integer-valued inputs half a unit away still split.
		root := &mlearn.TreeNode{Attr: 0, Threshold: 1000.5, Left: leaf(1, 0), Right: leaf(0, 1)}
		qp, err := compiled.Quantize(&j48.Model{Root: root})
		if err != nil {
			t.Fatalf("Quantize: %v", err)
		}
		ev := qp.NewEvaluator()
		if got := ev.Score([]float64{1000}); got != 0 {
			t.Errorf("below threshold: score %v, want 0", got)
		}
		if got := ev.Score([]float64{1001}); got != 1 {
			t.Errorf("above threshold: score %v, want 1", got)
		}
		if got := ev.Score([]float64{math.NaN()}); got != 1 {
			t.Errorf("NaN: score %v, want 1 (always right)", got)
		}
	})
	t.Run("sigmoid-endpoints", func(t *testing.T) {
		// Weights large enough that the margin leaves [-16,16]: the LUT
		// must saturate cleanly to ~0 / ~1, and +-Inf margins clamp to
		// the endpoints instead of poisoning the distribution.
		m := &logistic.Model{
			Scaler:  &mlearn.Scaler{Min: []float64{0}, Max: []float64{1}},
			Weights: []float64{1e4},
			Bias:    -5e3,
		}
		qp, err := compiled.Quantize(m)
		if err != nil {
			t.Fatalf("Quantize: %v", err)
		}
		ev := qp.NewEvaluator()
		if got := ev.Score([]float64{1}); got < 1-1e-6 {
			t.Errorf("saturated high: score %v", got)
		}
		if got := ev.Score([]float64{0}); got > 1e-6 {
			t.Errorf("saturated low: score %v", got)
		}
		if got := ev.Score([]float64{math.NaN()}); math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("NaN input: score %v", got)
		}
	})
}

// TestQuantConcurrentEvaluators scores one shared QuantProgram through
// many evaluators on concurrent goroutines (the fleet's shard
// arrangement) and checks each agrees with a serial reference — run
// under -race, this pins the program as genuinely immutable.
func TestQuantConcurrentEvaluators(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		if !quantizable(tc.label) {
			continue
		}
		qp, err := compiled.Quantize(tc.model)
		if err != nil {
			t.Fatalf("%s: Quantize: %v", tc.label, err)
		}
		ref := qp.NewEvaluator().ScoreBatch(testSet.X, nil)
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ev := qp.NewEvaluator()
				got := ev.ScoreBatch(testSet.X, nil)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
						errs <- errors.New(tc.label + ": concurrent score drifted from serial reference")
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestQuantZeroAlloc gates the steady-state quantized scoring paths at
// zero heap allocations, like the compiled tier.
func TestQuantZeroAlloc(t *testing.T) {
	for _, tc := range buildCorpus(t) {
		if !quantizable(tc.label) {
			continue
		}
		qp, err := compiled.Quantize(tc.model)
		if err != nil {
			t.Fatalf("%s: Quantize: %v", tc.label, err)
		}
		ev := qp.NewEvaluator()
		out := make([]float64, len(testSet.X))
		x := testSet.X[0]
		if n := testing.AllocsPerRun(20, func() { ev.Score(x) }); n != 0 {
			t.Errorf("%s: Score allocates %v/op", tc.label, n)
		}
		if n := testing.AllocsPerRun(5, func() { ev.ScoreBatch(testSet.X, out) }); n != 0 {
			t.Errorf("%s: ScoreBatch allocates %v/op", tc.label, n)
		}
	}
}
