package compiled

import (
	"fmt"
	"math"
)

// qinput is the shared input quantizer for the linear and MLP kernels:
// attribute j's scaler output u in [0,1] becomes a Q15 code
// round(u*32767). off/inv fold the scaler's min/span into one
// multiply-add; inv 0 marks a degenerate span (the scaler emits the
// 0.5 midpoint — code qHalf15). NaN inputs also map to the midpoint:
// the interpreted scaler would propagate the NaN into the margin and
// the verdict, the quantized tier degrades to "uninformative feature"
// instead (documented clamp behaviour).
type qinput struct {
	off []float64
	inv []float64 // 32767/span, or 0 for span <= 0
}

const qHalf15 = 16384 // round(0.5 * 32767)

func newQInput(min, max []float64, in int) (qinput, error) {
	qi := qinput{off: make([]float64, in), inv: make([]float64, in)}
	for j := 0; j < in; j++ {
		span := max[j] - min[j]
		if !(span > 0) { // includes NaN spans
			continue
		}
		qi.off[j] = min[j]
		qi.inv[j] = qOne15 / span
		if math.IsInf(qi.inv[j], 0) || qi.inv[j] != qi.inv[j] {
			return qinput{}, fmt.Errorf("%w: non-finite scaler span", ErrUnsupported)
		}
	}
	return qi, nil
}

// quantizeRow writes the Q15 input codes for one row. The clamp to
// [0, 32767] reproduces the scaler's [0,1] clamp, so +-Inf saturate to
// the same codes their clamped floats would.
func (qi *qinput) quantizeRow(x []float64, qx []int16) {
	for j, inv := range qi.inv {
		if inv == 0 {
			qx[j] = qHalf15
			continue
		}
		t := (x[j] - qi.off[j]) * inv
		switch {
		case t != t: // NaN
			qx[j] = qHalf15
		case t <= 0:
			qx[j] = 0
		case t >= qOne15:
			qx[j] = qOne15
		default:
			qx[j] = int16(t + 0.5) // t >= 0: round-half-away == round-half-up
		}
	}
}

// qlinearProgram is the fixed-point SGD/SMO/Logistic datapath: Q15
// inputs against an int16 weight row with one row scale, accumulated in
// int64, reconstructed to a float margin once per sample.
type qlinearProgram struct {
	qi      qinput
	w       []int16
	bias    float64
	wscale  float64 // dequantization: margin = bias + acc*wscale
	sigmoid bool
}

func quantizeLinear(p *Program) (*QuantProgram, error) {
	lp := p.linear
	in := len(lp.w)
	qi, err := newQInput(lp.min, lp.max, in)
	if err != nil {
		return nil, err
	}
	wmax := 0.0
	for _, w := range lp.w {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: non-finite linear weight", ErrUnsupported)
		}
		wmax = math.Max(wmax, math.Abs(w))
	}
	ql := &qlinearProgram{qi: qi, bias: lp.bias, sigmoid: lp.sigmoid, w: make([]int16, in)}
	if wmax > 0 {
		s := qOne15 / wmax
		for j, w := range lp.w {
			ql.w[j] = int16(math.Round(w * s))
		}
		ql.wscale = wmax / (qOne15 * qOne15)
	}
	return &QuantProgram{kind: p.kind, classes: p.classes, linear: ql, census: p.census}, nil
}

// margin is the fused integer dot product: one int64 accumulator, one
// dequantizing multiply at the end.
func (ql *qlinearProgram) margin(qx []int16) float64 {
	acc := int64(0)
	for j, w := range ql.w {
		acc += int64(w) * int64(qx[j])
	}
	return ql.bias + float64(acc)*ql.wscale
}

func (ql *qlinearProgram) into(qx []int16, out []float64) {
	if ql.sigmoid {
		p := lutSigmoid(ql.margin(qx))
		out[0], out[1] = 1-p, p
		return
	}
	if ql.margin(qx) >= 0 {
		out[0], out[1] = 0, 1
	} else {
		out[0], out[1] = 1, 0
	}
}

// qmlpProgram is the fixed-point MLP: Q15 inputs, int16 weight rows
// with per-row scales on both layers, int64 accumulation, lookup-table
// sigmoids, and Q15 hidden activations feeding the output layer.
//
// The hidden layer never touches float: each row's bias and
// dequantization scale fold into an integer affine map from the raw
// int64 accumulator straight to a Q24 sigmoid-table index
// (tq = qo1[h] + acc*qk1[h]), and qlutSigQ15 interpolates the Q15
// activation from that index in integer arithmetic. The output layer
// folds the same transform into two floats per row (sOff2/sMul2) since
// its result must be a float probability anyway.
type qmlpProgram struct {
	qi  qinput
	w1  []int16 // hid rows of in weights
	qk1 []int64 // index slope per hidden row, scaled by 2^qsh1[h]
	qo1 []int64 // Q24 index offset per hidden row
	// qsh1 is the per-row slope exponent: the slope is stored with as
	// many extra fraction bits as the accumulator bound leaves free in
	// int64, so tiny row scales keep ~21 significant bits.
	qsh1    []uint8
	w2      []int16 // out rows of hid weights
	sOff2   []float64
	sMul2   []float64
	in, hid int
	out     int
}

func quantizeMLP(p *Program) (*QuantProgram, error) {
	mp := p.mlp
	qi, err := newQInput(mp.min, mp.max, mp.in)
	if err != nil {
		return nil, err
	}
	qm := &qmlpProgram{
		qi: qi,
		in: mp.in, hid: mp.hid, out: mp.out,
	}
	var s1, s2 []float64
	qm.w1, s1, err = quantizeRows(mp.w1, mp.hid, mp.in)
	if err != nil {
		return nil, err
	}
	qm.w2, s2, err = quantizeRows(mp.w2, mp.out, mp.hid)
	if err != nil {
		return nil, err
	}
	qm.qk1 = make([]int64, mp.hid)
	qm.qo1 = make([]int64, mp.hid)
	qm.qsh1 = make([]uint8, mp.hid)
	// accBound caps |acc|; the slope exponent is chosen so the index
	// product acc*qk1 stays inside int64 while keeping ~21 significant
	// slope bits even for tiny row scales.
	accBound := float64(mp.in) * qOne15 * qOne15
	for h := 0; h < mp.hid; h++ {
		k := s1[h] * sigStep * (1 << qsigShift)
		o := (mp.b1[h] + sigRange) * sigStep * (1 << qsigShift)
		if math.IsNaN(o) || math.Abs(o) >= 1<<62 {
			return nil, fmt.Errorf("%w: non-finite MLP hidden bias", ErrUnsupported)
		}
		qm.qo1[h] = int64(math.Round(o))
		if k == 0 {
			continue
		}
		sh := 0
		for sh < 40 && math.Abs(k)*float64(int64(1)<<(sh+1))*accBound < 1<<61 {
			sh++
		}
		ks := k * float64(int64(1)<<sh)
		if math.Abs(ks) < 1 || math.Abs(ks)*accBound >= 1<<62 {
			return nil, fmt.Errorf("%w: MLP hidden row scale out of fixed-point range", ErrUnsupported)
		}
		qm.qk1[h] = int64(math.Round(ks))
		qm.qsh1[h] = uint8(sh)
	}
	qm.sOff2 = make([]float64, mp.out)
	qm.sMul2 = make([]float64, mp.out)
	for c := 0; c < mp.out; c++ {
		qm.sOff2[c] = (mp.b2[c] + sigRange) * sigStep
		qm.sMul2[c] = s2[c] * sigStep
		if math.IsNaN(qm.sOff2[c]) {
			return nil, fmt.Errorf("%w: non-finite MLP output bias", ErrUnsupported)
		}
	}
	return &QuantProgram{kind: kindMLP, classes: p.classes, mlp: qm, census: p.census}, nil
}

// quantizeRows converts a row-major float matrix to int16 with one
// scale per row: wq = round(w * 32767/rowmax), dequantized by
// scale = rowmax/(32767*32767) (the extra 32767 undoes the Q15 input).
func quantizeRows(w []float64, rows, cols int) ([]int16, []float64, error) {
	q := make([]int16, rows*cols)
	scales := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := w[r*cols : r*cols+cols]
		rmax := 0.0
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("%w: non-finite MLP weight", ErrUnsupported)
			}
			rmax = math.Max(rmax, math.Abs(v))
		}
		if rmax == 0 {
			continue
		}
		s := qOne15 / rmax
		for c, v := range row {
			q[r*cols+c] = int16(math.Round(v * s))
		}
		scales[r] = rmax / (qOne15 * qOne15)
	}
	return q, scales, nil
}

// hiddenInto computes the Q15 hidden activations for one quantized
// input row — integer MACs into the integer sigmoid-index transform,
// no float anywhere.
func (qm *qmlpProgram) hiddenInto(qx, qh []int16) {
	in := qm.in
	for h := 0; h < qm.hid; h++ {
		row := qm.w1[h*in : h*in+in : h*in+in]
		acc := int64(0)
		for j, w := range row {
			acc += int64(w) * int64(qx[j])
		}
		qh[h] = qlutSigQ15(qm.qo1[h] + (acc*qm.qk1[h])>>qm.qsh1[h])
	}
}

// outInto runs the output layer over Q15 hidden activations and
// normalises like the interpreted model. The bias and row scale are
// pre-folded into the sigmoid-table index transform (sOff2/sMul2).
func (qm *qmlpProgram) outInto(qh []int16, out []float64) {
	hid := qm.hid
	o := out[:qm.out]
	for c := range o {
		row := qm.w2[c*hid : c*hid+hid : c*hid+hid]
		acc := int64(0)
		for h, w := range row {
			acc += int64(w) * int64(qh[h])
		}
		o[c] = lutSigT(qm.sOff2[c] + float64(acc)*qm.sMul2[c])
	}
	sum := 0.0
	for _, v := range o {
		sum += v
	}
	if sum <= 0 {
		for i := range o {
			o[i] = 1 / float64(len(o))
		}
		return
	}
	for i := range o {
		o[i] /= sum
	}
}

func (qm *qmlpProgram) into(x []float64, qx, qh []int16, out []float64) {
	qm.qi.quantizeRow(x[:qm.in], qx)
	qm.hiddenInto(qx, qh)
	qm.outInto(qh, out)
}

// scoreBatch is the blocked integer matmul: mlpBlock-sample tiles,
// each int16 hidden weight row streamed across the whole tile, then
// the output layer per sample — the float blocked kernel's loop nest
// with integer MACs and table sigmoids. bqx/bqh are
// mlpBlock*in / mlpBlock*hid int16 scratch; dist is out-wide scratch.
func (qm *qmlpProgram) scoreBatch(xs [][]float64, out []float64, bqx, bqh []int16, dist []float64) {
	in, hid, k := qm.in, qm.hid, qm.out
	for i0 := 0; i0 < len(xs); {
		m := len(xs) - i0
		if m > mlpBlock {
			m = mlpBlock
		}
		tiled := true
		for s := 0; s < m; s++ {
			if len(xs[i0+s]) < in {
				tiled = false
				break
			}
		}
		if !tiled {
			// Short row: let the single-vector kernel panic the same way
			// the interpreted model would rather than mis-tile the block.
			qm.into(xs[i0], bqx[:in], bqh[:hid], dist)
			if k < 2 {
				out[i0] = 0
			} else {
				out[i0] = dist[1]
			}
			i0++
			continue
		}
		for s := 0; s < m; s++ {
			qm.qi.quantizeRow(xs[i0+s][:in], bqx[s*in:s*in+in])
		}
		for h := 0; h < hid; h++ {
			row := qm.w1[h*in : h*in+in : h*in+in]
			ko, oo, sh := qm.qk1[h], qm.qo1[h], qm.qsh1[h]
			for s := 0; s < m; s++ {
				u := bqx[s*in : s*in+in : s*in+in]
				acc := int64(0)
				for j, w := range row {
					acc += int64(w) * int64(u[j])
				}
				bqh[s*hid+h] = qlutSigQ15(oo + (acc*ko)>>sh)
			}
		}
		for s := 0; s < m; s++ {
			hrow := bqh[s*hid : s*hid+hid : s*hid+hid]
			o := dist[:k]
			for c := range o {
				row := qm.w2[c*hid : c*hid+hid : c*hid+hid]
				acc := int64(0)
				for h, w := range row {
					acc += int64(w) * int64(hrow[h])
				}
				o[c] = lutSigT(qm.sOff2[c] + float64(acc)*qm.sMul2[c])
			}
			sum := 0.0
			for _, v := range o {
				sum += v
			}
			switch {
			case k < 2:
				out[i0+s] = 0
			case sum <= 0:
				out[i0+s] = 1 / float64(k)
			default:
				out[i0+s] = o[1] / sum
			}
		}
		i0 += m
	}
}
