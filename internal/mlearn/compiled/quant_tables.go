package compiled

import (
	"fmt"
	"math"
)

// qbayesProgram is the fixed-point BayesNet: priors and CPT entries
// stored as Q16 log2 probabilities so the per-attribute posterior
// update is one int64 add per class — no multiplies, and crucially no
// per-attribute rescale. The interpreted (and bit-identical compiled)
// schedule renormalises the posterior after every attribute purely to
// stop float underflow; log-domain accumulation cannot underflow, so
// the rescale hoists out entirely and only one exp2+normalise runs per
// sample. This is the hoisted-rescale design DESIGN.md §11 explains
// the compiled tier cannot adopt.
//
// Binning stays exact: the cut points remain float64 and the binary
// search is the interpreted one, so a quantized sample always lands in
// the same bin — only the probability arithmetic is approximate.
type qbayesProgram struct {
	k      int
	prior  []int64 // Q16 log2
	cuts   []float64
	cutOff []int32
	cpt    []int64 // Q16 log2, same packing as bayesProgram
	cptOff []int32
	bins   []int32
}

// qLogFloor stands in for log2(0): low enough that one floored term
// zeroes the class against any realistic competitor, high enough that
// an attribute count of terms cannot underflow int64. (Laplace
// smoothing means trained CPTs never hit it; it guards hand-built
// models.)
const qLogFloor = int64(-1 << 30)

func qLog2(p float64) int64 {
	if !(p > 0) {
		return qLogFloor
	}
	l := math.Round(math.Log2(p) * qOne16)
	if l < float64(qLogFloor) {
		return qLogFloor
	}
	return int64(l)
}

func quantizeBayes(p *Program) (*QuantProgram, error) {
	bp := p.bayes
	for _, c := range bp.cuts {
		if c != c {
			return nil, fmt.Errorf("%w: NaN discretizer cut", ErrUnsupported)
		}
	}
	qb := &qbayesProgram{
		k:      bp.k,
		prior:  make([]int64, len(bp.prior)),
		cuts:   append([]float64(nil), bp.cuts...),
		cutOff: append([]int32(nil), bp.cutOff...),
		cpt:    make([]int64, len(bp.cpt)),
		cptOff: append([]int32(nil), bp.cptOff...),
		bins:   append([]int32(nil), bp.bins...),
	}
	for i, pr := range bp.prior {
		qb.prior[i] = qLog2(pr)
	}
	for i, e := range bp.cpt {
		qb.cpt[i] = qLog2(e)
	}
	return &QuantProgram{kind: kindBayes, classes: p.classes, bayes: qb, census: p.census}, nil
}

// into replays the CPT walk in the log domain: the same binary bin
// search per attribute, then one add per class, then a single
// exp2-and-normalise against the max accumulator (so the largest
// posterior dequantizes to 1 and the rest scale under it — the
// softmax-style stabilisation that replaces the per-attribute rescale).
func (qb *qbayesProgram) into(x []float64, acc []int64, out []float64) {
	k := qb.k
	a := acc[:k]
	copy(a, qb.prior)
	for j := range qb.bins {
		cuts := qb.cuts[qb.cutOff[j]:qb.cutOff[j+1]]
		v := x[j]
		lo, hi := 0, len(cuts)
		for lo < hi {
			mid := (lo + hi) / 2
			if v < cuts[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		bins := int(qb.bins[j])
		tbl := qb.cpt[qb.cptOff[j]:]
		for c := 0; c < k; c++ {
			a[c] += tbl[c*bins+lo]
		}
	}
	max := a[0]
	for _, v := range a[1:] {
		if v > max {
			max = v
		}
	}
	o := out[:k]
	sum := 0.0
	for c, v := range a {
		o[c] = lutExp2(float64(v-max) * (1.0 / qOne16))
		sum += o[c]
	}
	// The max class dequantizes to exactly 1, so sum >= 1 — the
	// interpreted degenerate-posterior fallback is unreachable here.
	for c := range o {
		o[c] /= sum
	}
}

// scoreBatch scores every row with the bin-search dispatch hoisted.
func (qb *qbayesProgram) scoreBatch(xs [][]float64, out []float64, acc []int64, dist []float64) {
	if qb.k < 2 {
		for i := range xs {
			out[i] = 0
		}
		return
	}
	for i, x := range xs {
		qb.into(x, acc, dist)
		out[i] = dist[1]
	}
}
