package compiled

import (
	"fmt"
	"math"

	"repro/internal/mlearn"
)

// fnode is one flattened tree node. Packing the threshold and the three
// indices into a single struct keeps each visited node on one cache
// line and costs one bounds check per hop instead of four parallel
// slice loads.
//
//	attr >= 0: internal node — test x[attr] < thr, descend to left
//	           (true) or right (false).
//	attr <  0: leaf — left is the leaf's slot in dists (its class
//	           distribution is dists[left*k : left*k+k]) and right is
//	           the precomputed argmax class (PredictWith's tie rule:
//	           lowest index wins), so the boosted vote pass never
//	           re-scans the distribution.
type fnode struct {
	thr   float64
	attr  int32
	left  int32
	right int32
}

// forestProgram is one or more decision trees flattened into one
// contiguous node array: children are indices instead of pointers, so a
// root-to-leaf walk is a tight loop over one slice with no pointer
// chasing. The same structure serves a single tree (one root), an
// AdaBoost committee (alphas set, fused weighted-vote pass) and a
// Bagging committee (fused averaging pass).
type forestProgram struct {
	k     int
	roots []int32
	nodes []fnode
	dists []float64
	// alphas are the AdaBoost vote weights (kindBoostForest only).
	alphas []float64

	internal int
	leaves   int
}

// compileTree lowers a single J48/REPTree tree (class count read from
// its first leaf; flattening verifies every leaf agrees).
func compileTree(root *mlearn.TreeNode) (*Program, error) {
	if root == nil {
		return nil, fmt.Errorf("%w: tree model has no root", ErrUnsupported)
	}
	leaf := root
	for leaf != nil && !leaf.Leaf {
		leaf = leaf.Left
	}
	if leaf == nil {
		return nil, fmt.Errorf("%w: malformed tree (internal node without left child)", ErrUnsupported)
	}
	fp, err := flattenForest([]*mlearn.TreeNode{root}, len(leaf.Dist))
	if err != nil {
		return nil, err
	}
	p := &Program{kind: kindTree, classes: fp.k, forest: fp}
	p.census = fp.censusOf()
	return p, nil
}

// flattenForest lowers a set of tree roots sharing class count k into
// one forestProgram.
func flattenForest(roots []*mlearn.TreeNode, k int) (*forestProgram, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: tree with empty leaf distribution", ErrUnsupported)
	}
	fp := &forestProgram{k: k, roots: make([]int32, len(roots))}
	for i, r := range roots {
		idx, err := fp.flatten(r)
		if err != nil {
			return nil, fmt.Errorf("tree %d: %w", i, err)
		}
		fp.roots[i] = idx
	}
	return fp, nil
}

// flatten appends node n's subtree in preorder and returns its index.
func (fp *forestProgram) flatten(n *mlearn.TreeNode) (int32, error) {
	if n == nil {
		return 0, fmt.Errorf("%w: nil tree node", ErrUnsupported)
	}
	if len(fp.nodes) > math.MaxInt32-2 {
		return 0, fmt.Errorf("%w: forest too large to index", ErrUnsupported)
	}
	idx := int32(len(fp.nodes))
	if n.Leaf {
		if len(n.Dist) != fp.k {
			return 0, fmt.Errorf("%w: leaf distribution has %d classes, forest has %d",
				ErrUnsupported, len(n.Dist), fp.k)
		}
		slot := int32(len(fp.dists) / fp.k)
		fp.dists = append(fp.dists, n.Dist...)
		fp.nodes = append(fp.nodes, fnode{attr: -1, left: slot, right: argmax32(n.Dist)})
		fp.leaves++
		return idx, nil
	}
	if n.Attr < 0 || n.Left == nil || n.Right == nil {
		return 0, fmt.Errorf("%w: malformed internal tree node", ErrUnsupported)
	}
	fp.nodes = append(fp.nodes, fnode{thr: n.Threshold, attr: int32(n.Attr)})
	fp.internal++
	l, err := fp.flatten(n.Left)
	if err != nil {
		return 0, err
	}
	r, err := fp.flatten(n.Right)
	if err != nil {
		return 0, err
	}
	fp.nodes[idx].left = l
	fp.nodes[idx].right = r
	return idx, nil
}

// argmax32 is PredictWith's argmax with its tie rule (lowest index
// wins), precomputed at compile time for each leaf.
func argmax32(dist []float64) int32 {
	best, bestP := 0, math.Inf(-1)
	for i, p := range dist {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return int32(best)
}

func (fp *forestProgram) censusOf() Census {
	return Census{
		Comparators: fp.internal,
		Leaves:      fp.leaves,
		Submodels:   len(fp.roots),
	}
}

// leafOf walks tree t for x and returns its leaf node index — the same
// comparison sequence as TreeNode.DistributionInto, over the flat node
// array.
func (fp *forestProgram) leafOf(t int, x []float64) int32 {
	nodes := fp.nodes
	n := fp.roots[t]
	for {
		nd := &nodes[n]
		if nd.attr < 0 {
			return n
		}
		if x[nd.attr] < nd.thr {
			n = nd.left
		} else {
			n = nd.right
		}
	}
}

// singleInto copies the reached leaf's distribution into out, exactly
// like TreeNode.DistributionInto.
func (fp *forestProgram) singleInto(x, out []float64) {
	n := fp.leafOf(0, x)
	slot := int(fp.nodes[n].left) * fp.k
	copy(out[:fp.k], fp.dists[slot:slot+fp.k])
}

// boostedInto is ensemble.BoostedModel.DistributionInto fused into one
// pass: each tree walk lands on a leaf whose argmax class was
// precomputed, so the vote loop is walk + one indexed add per member.
// The accumulation, normalisation and degenerate-total handling follow
// the interpreted schedule operation for operation.
func (fp *forestProgram) boostedInto(x, out []float64) {
	votes := out[:fp.k]
	for i := range votes {
		votes[i] = 0
	}
	for t := range fp.roots {
		n := fp.leafOf(t, x)
		votes[fp.nodes[n].right] += fp.alphas[t]
	}
	total := 0.0
	for _, v := range votes {
		total += v
	}
	if total <= 0 {
		for i := range votes {
			votes[i] = 1 / float64(fp.k)
		}
		return
	}
	for i := range votes {
		votes[i] /= total
	}
}

// baggedInto is ensemble.BaggedModel.DistributionInto fused into one
// pass: each member's leaf distribution accumulates directly from the
// packed leaf table in member order, then divides by the member count —
// the interpreted averaging schedule without the per-member scratch
// copy.
func (fp *forestProgram) baggedInto(x, out []float64) {
	avg := out[:fp.k]
	for c := range avg {
		avg[c] = 0
	}
	for t := range fp.roots {
		n := fp.leafOf(t, x)
		slot := int(fp.nodes[n].left) * fp.k
		d := fp.dists[slot : slot+fp.k]
		for c, p := range d {
			avg[c] += p
		}
	}
	for c := range avg {
		avg[c] /= float64(len(fp.roots))
	}
}

// scoreBatch scores every row through the forest kernel selected once
// by kd, writing P(class 1) per row — the batched hot path with the
// per-sample kind dispatch and Score-wrapper overhead hoisted out of
// the loop. dist is the caller's k-wide scratch.
//
// Two alternative batch schedules were benchmarked here and rejected:
// an interleaved multi-sample walker (at HPC-detector tree sizes the
// forest lives in L1, walks are mispredict-bound, and lane bookkeeping
// only added branches) and a tree-outer/row-inner transposed sweep
// with a per-tile vote matrix (faster on toy forests, but at paper
// scale the scattered per-(tree,row) accumulator stores lose to the
// row-at-a-time loop, whose two-class vote cells live in registers).
func (fp *forestProgram) scoreBatch(kd kind, xs [][]float64, out, dist []float64) {
	if fp.k < 2 {
		// mlearn.ScoreWith's degenerate guard: <2 classes scores 0.
		for i := range xs {
			out[i] = 0
		}
		return
	}
	switch kd {
	case kindTree:
		// A single tree's score needs no scratch at all: read the
		// leaf's P(class 1) straight from the packed leaf table.
		for i, x := range xs {
			n := fp.leafOf(0, x)
			out[i] = fp.dists[int(fp.nodes[n].left)*fp.k+1]
		}
	case kindBoostForest:
		for i, x := range xs {
			fp.boostedInto(x, dist)
			out[i] = dist[1]
		}
	default: // kindBagForest
		for i, x := range xs {
			fp.baggedInto(x, dist)
			out[i] = dist[1]
		}
	}
}
