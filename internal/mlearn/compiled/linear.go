package compiled

import (
	"fmt"
	"math"

	"repro/internal/mlearn"
	"repro/internal/mlearn/mlp"
)

// linearProgram is a fused SGD/SMO/Logistic datapath: the scaler's
// min/max and the weight vector sit in contiguous slices and one loop
// scales each attribute and accumulates its weighted contribution. The
// per-attribute values and the accumulation order are exactly those of
// Scaler.ApplyInto followed by the models' dot-product loop — fusing
// removes the intermediate buffer, not any floating-point operation.
type linearProgram struct {
	min, max []float64
	w        []float64
	bias     float64
	// sigmoid selects the logistic output (P = σ(margin)); otherwise the
	// hard SGD/SMO decision (margin >= 0 → class 1).
	sigmoid bool
}

func compileLinear(sc *mlearn.Scaler, weights []float64, bias float64, sigmoid bool) (*Program, error) {
	if sc == nil || len(weights) == 0 || len(sc.Min) < len(weights) || len(sc.Max) < len(weights) {
		return nil, fmt.Errorf("%w: linear model with missing scaler or weights", ErrUnsupported)
	}
	lp := &linearProgram{
		min:     append([]float64(nil), sc.Min...),
		max:     append([]float64(nil), sc.Max...),
		w:       append([]float64(nil), weights...),
		bias:    bias,
		sigmoid: sigmoid,
	}
	kd := kindLinear
	census := Census{MACs: len(weights), Submodels: 1}
	if sigmoid {
		kd = kindLogistic
		census.Sigmoids = 1
	}
	return &Program{kind: kd, classes: 2, linear: lp, census: census}, nil
}

// margin is marginWith with the scale and dot loops fused: identical
// values in identical order, no scratch buffer.
func (lp *linearProgram) margin(x []float64) float64 {
	s := lp.bias
	for j, w := range lp.w {
		v := x[j]
		span := lp.max[j] - lp.min[j]
		var u float64
		if span <= 0 {
			u = 0.5
		} else {
			u = (v - lp.min[j]) / span
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
		}
		s += w * u
	}
	return s
}

func (lp *linearProgram) into(x, out []float64) {
	if lp.sigmoid {
		p := 1 / (1 + math.Exp(-lp.margin(x)))
		out[0], out[1] = 1-p, p
		return
	}
	if lp.margin(x) >= 0 {
		out[0], out[1] = 0, 1
	} else {
		out[0], out[1] = 1, 0
	}
}

// mlpBlock is the batch tile width for blocked MLP evaluation: within a
// tile each hidden-unit weight row is loaded once and applied to every
// sample, turning the batch into a matrix-matrix pass while each
// sample's own operation schedule stays untouched.
const mlpBlock = 16

// MLPBlockSize exposes the blocked-MLP tile width for tests that pin
// batch-kernel behaviour around tile boundaries.
func MLPBlockSize() int { return mlpBlock }

// mlpProgram is an MLP with both layers lowered to row-major flat
// matrices: w1 holds hid rows of in weights, w2 holds out rows of hid
// weights, biases ride separately so per-sample accumulation starts
// from the bias exactly like forwardInto.
type mlpProgram struct {
	min, max []float64
	w1, b1   []float64
	w2, b2   []float64
	in, hid  int
	out      int
}

func compileMLP(m *mlp.Model) (*Program, error) {
	hid, out := len(m.B1), len(m.B2)
	in := m.Inputs()
	if m.Scaler == nil || in == 0 || hid == 0 || out == 0 ||
		len(m.W1) != hid || len(m.W2) != out ||
		len(m.Scaler.Min) < in || len(m.Scaler.Max) < in {
		return nil, fmt.Errorf("%w: malformed MLP", ErrUnsupported)
	}
	mp := &mlpProgram{
		min: append([]float64(nil), m.Scaler.Min...),
		max: append([]float64(nil), m.Scaler.Max...),
		w1:  make([]float64, 0, hid*in),
		b1:  append([]float64(nil), m.B1...),
		w2:  make([]float64, 0, out*hid),
		b2:  append([]float64(nil), m.B2...),
		in:  in, hid: hid, out: out,
	}
	for _, row := range m.W1 {
		if len(row) != in {
			return nil, fmt.Errorf("%w: ragged MLP hidden layer", ErrUnsupported)
		}
		mp.w1 = append(mp.w1, row...)
	}
	for _, row := range m.W2 {
		if len(row) != hid {
			return nil, fmt.Errorf("%w: ragged MLP output layer", ErrUnsupported)
		}
		mp.w2 = append(mp.w2, row...)
	}
	p := &Program{kind: kindMLP, classes: out, mlp: mp}
	p.census = Census{
		MACs:      in*hid + hid*out,
		Sigmoids:  hid + out,
		Submodels: 1,
	}
	return p, nil
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// scale writes Scaler.ApplyInto(x) into u (same per-attribute values,
// same clamp sequence).
func (mp *mlpProgram) scale(x, u []float64) {
	for j, v := range x {
		span := mp.max[j] - mp.min[j]
		if span <= 0 {
			u[j] = 0.5
			continue
		}
		t := (v - mp.min[j]) / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		u[j] = t
	}
}

// into is mlp.Model.DistributionInto over the flat matrices: scale,
// hidden layer, output layer, normalise — per-sample operation order
// identical to forwardInto.
func (mp *mlpProgram) into(x, u, hidden, out []float64) {
	u = u[:len(x)]
	mp.scale(x, u)
	hidden = hidden[:mp.hid]
	for h := 0; h < mp.hid; h++ {
		s := mp.b1[h]
		row := mp.w1[h*mp.in : h*mp.in+mp.in]
		for j, v := range u {
			s += row[j] * v
		}
		hidden[h] = sigmoid(s)
	}
	o := out[:mp.out]
	for c := range o {
		s := mp.b2[c]
		row := mp.w2[c*mp.hid : c*mp.hid+mp.hid]
		for h, v := range hidden {
			s += row[h] * v
		}
		o[c] = sigmoid(s)
	}
	sum := 0.0
	for _, v := range o {
		sum += v
	}
	if sum <= 0 {
		for i := range o {
			o[i] = 1 / float64(len(o))
		}
		return
	}
	for i := range o {
		o[i] /= sum
	}
}

// scoreBatch is the blocked batch evaluation: the batch is tiled into
// mlpBlock-sample blocks; within a block every hidden weight row is
// streamed once across all samples (matrix-matrix traversal) instead of
// re-read per sample. Each sample's own dot products, sigmoids and
// normalisation run in the interpreted order, so scores stay
// bit-identical — only the loop nest across samples changes. bu and bh
// are mlpBlock*in and mlpBlock*hid scratch; dist is out-wide scratch.
func (mp *mlpProgram) scoreBatch(xs [][]float64, out, bu, bh, dist []float64) {
	in, hid, k := mp.in, mp.hid, mp.out
	for i0 := 0; i0 < len(xs); {
		m := len(xs) - i0
		if m > mlpBlock {
			m = mlpBlock
		}
		tiled := true
		for s := 0; s < m; s++ {
			if len(xs[i0+s]) != in {
				tiled = false
				break
			}
		}
		if !tiled {
			// Odd-width row: score it alone through the single-vector
			// kernel (same schedule) and resume tiling after it.
			mp.into(xs[i0], bu, bh, dist)
			if k < 2 {
				out[i0] = 0
			} else {
				out[i0] = dist[1]
			}
			i0++
			continue
		}
		for s := 0; s < m; s++ {
			mp.scale(xs[i0+s], bu[s*in:s*in+in])
		}
		for h := 0; h < hid; h++ {
			row := mp.w1[h*in : h*in+in]
			b := mp.b1[h]
			for s := 0; s < m; s++ {
				u := bu[s*in : s*in+in]
				acc := b
				for j, v := range u {
					acc += row[j] * v
				}
				bh[s*hid+h] = sigmoid(acc)
			}
		}
		for s := 0; s < m; s++ {
			hrow := bh[s*hid : s*hid+hid]
			o := dist[:k]
			for c := range o {
				acc := mp.b2[c]
				row := mp.w2[c*hid : c*hid+hid]
				for h, v := range hrow {
					acc += row[h] * v
				}
				o[c] = sigmoid(acc)
			}
			sum := 0.0
			for _, v := range o {
				sum += v
			}
			switch {
			case k < 2:
				out[i0+s] = 0
			case sum <= 0:
				out[i0+s] = 1 / float64(k)
			default:
				out[i0+s] = o[1] / sum
			}
		}
		i0 += m
	}
}
