package compiled

// Quantized tier: fixed-point lowerings of the compiled programs.
//
// Where a Program replays the interpreted float schedule bit for bit,
// a QuantProgram trades bit-identity for arithmetic the hardware likes
// better — int16 thresholds with branchless node stepping, int16
// weight rows with per-row scales accumulated in int64, a lookup-table
// sigmoid, and log-domain fixed-point CPT replay. The contract drops
// from "identical float64 distributions" to *statistical equivalence*:
// verdict parity >= 99.9% across the model zoo and accuracy/AUC deltas
// within robustness-sweep noise, gated by
// experiments.QuantEquivalence rather than a bit-compare.
//
// The numeric conventions, fixed for the whole tier:
//
//   - Rounding is round-half-away-from-zero (math.Round) everywhere a
//     float becomes a fixed-point value, both at quantization time and
//     when quantizing inputs at evaluation time.
//   - Tree attributes quantize through a per-attribute affine map
//     derived from the *threshold span* of that attribute across the
//     whole forest, so every threshold lands well inside int16 and
//     every finite input clamps to a band strictly outside the
//     threshold range — a clamped value still orders correctly against
//     every threshold it can meet.
//   - NaN and +Inf inputs quantize to qInfPos, -Inf to qInfNeg: NaN
//     fails every `x < thr` test in the interpreted walk and so always
//     descends right, which is exactly what the saturated positive
//     code does. Linear/MLP inputs pass through the scaler clamp
//     first; there NaN maps to the scaler midpoint (0.5) — documented
//     divergence from the interpreted NaN-propagating path.
//   - Probabilities (leaf distributions, MLP hidden activations) are
//     Q15; boosted vote weights and BayesNet log2 tables are Q16; all
//     accumulation is int64 so no kernel can overflow or wrap.
//   - The sigmoid is a 2048-segment linear-interpolated table over
//     [-16, 16], saturating to sigma(+-16) beyond (|error| < 1e-6);
//     the BayesNet posterior uses an equivalent exp2 table over
//     [-32, 0].
//
// Families where fixed-point buys nothing stay unsupported and fall
// back per-model to the compiled tier (mirroring compiled->interpreted
// fallback): OneR and JRip are already single-comparison ladders, and
// KNN never compiled in the first place.

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/mlearn"
)

// Fixed-point formats and saturation codes shared by the kernels.
const (
	qOne15 = 32767 // Q15 unit (probabilities, scaled inputs, activations)
	qOne16 = 65536 // Q16 unit (vote weights, log2 tables)

	// qInfPos/qInfNeg are the saturated input codes. Finite tree inputs
	// clamp to +-qClamp, and thresholds quantize inside +-qThrMax, so
	// the three bands never collide: threshold < clamped finite < Inf.
	qInfPos = 32767
	qInfNeg = -32767
	qClamp  = 32600
	qThrMax = 30000
)

// QuantProgram is an immutable quantized model: the fixed-point twin
// of Program. Share one QuantProgram across any number of goroutines;
// evaluate through per-goroutine QuantEvaluators.
type QuantProgram struct {
	kind    kind
	classes int

	forest *qforestProgram
	linear *qlinearProgram
	mlp    *qmlpProgram
	bayes  *qbayesProgram

	// committee members (kindBoostCommittee / kindBagCommittee); the
	// vote loop itself stays float — it runs once per member, not per
	// weight, so there is nothing to quantize.
	members []*QuantProgram
	alphas  []float64

	census Census
}

// NumClasses reports the program's class count without evaluating
// anything.
func (p *QuantProgram) NumClasses() int { return p.classes }

// Kind names the lowered program family ("boosted-forest", "mlp", ...).
func (p *QuantProgram) Kind() string { return p.kind.String() }

// Census returns the program's structural operator counts. Quantization
// changes arithmetic widths, never structure, so this equals the source
// Program's census — the hls cross-check holds for both tiers.
func (p *QuantProgram) Census() Census { return p.census }

// quantizeCount counts top-level Quantize calls — the test hook that
// pins quantize-once-per-template sharing across replicas, exactly like
// CompileCount for the compiled tier.
var quantizeCount atomic.Int64

// QuantizeCount returns the number of top-level Quantize/Program.Quantize
// invocations in this process.
func QuantizeCount() int64 { return quantizeCount.Load() }

// Quantize lowers a trained classifier to the quantized tier: it
// compiles the model (reusing the compiled tier's validation and
// flattening) and converts the flat program to fixed point. Models that
// do not compile, or whose quantization is not worthwhile (OneR, JRip),
// return an error wrapping ErrUnsupported — callers fall back to the
// compiled tier per model.
func Quantize(c mlearn.Classifier) (*QuantProgram, error) {
	p, err := compile(c)
	if err != nil {
		return nil, err
	}
	return p.Quantize()
}

// Quantize converts an already-compiled program to the quantized tier.
// The receiver is read-only; the result shares nothing with it.
func (p *Program) Quantize() (*QuantProgram, error) {
	quantizeCount.Add(1)
	return quantizeProgram(p)
}

// quantizeProgram is the recursive conversion entry (committee members
// come through here without bumping the top-level counter).
func quantizeProgram(p *Program) (*QuantProgram, error) {
	switch p.kind {
	case kindTree, kindBoostForest, kindBagForest:
		return quantizeForest(p)
	case kindLinear, kindLogistic:
		return quantizeLinear(p)
	case kindMLP:
		return quantizeMLP(p)
	case kindBayes:
		return quantizeBayes(p)
	case kindBoostCommittee, kindBagCommittee:
		return quantizeCommittee(p)
	}
	// OneR's threshold ladder and JRip's rule scan are one comparison
	// deep — narrowing them to int16 cannot pay for the input
	// quantization pass, so they stay on the compiled tier.
	return nil, fmt.Errorf("%w: no quantized lowering for %s", ErrUnsupported, p.kind)
}

// quantizeCommittee converts every member; one unquantizable member
// fails the whole ensemble (which then stays compiled — mixing tiers
// inside one committee would make its error model unanalysable).
func quantizeCommittee(p *Program) (*QuantProgram, error) {
	members := make([]*QuantProgram, len(p.members))
	for i, m := range p.members {
		qm, err := quantizeProgram(m)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		members[i] = qm
	}
	return &QuantProgram{
		kind:    p.kind,
		classes: p.classes,
		members: members,
		alphas:  append([]float64(nil), p.alphas...),
		census:  p.census,
	}, nil
}

// ---- shared lookup tables ----

// sigTabN segments over [-sigRange, sigRange]; one extra entry closes
// the last segment. 2048 segments give a linear-interpolation error
// below 1e-6 — far inside the statistical-equivalence budget.
const (
	sigTabN   = 2048
	sigRange  = 16.0
	sigStep   = sigTabN / (2 * sigRange) // segments per unit of x
	exp2TabN  = 2048
	exp2Range = 32.0
	exp2Step  = exp2TabN / exp2Range
)

var sigTab [sigTabN + 1]float64
var exp2Tab [exp2TabN + 1]float64

// qsigTab is sigTab in Q15 — the MLP hidden layer interpolates it in
// pure integer arithmetic.
var qsigTab [sigTabN + 1]int16

func init() {
	for i := range sigTab {
		x := -sigRange + float64(i)/sigStep
		sigTab[i] = 1 / (1 + math.Exp(-x))
		qsigTab[i] = int16(sigTab[i]*qOne15 + 0.5)
	}
	for i := range exp2Tab {
		d := -exp2Range + float64(i)/exp2Step
		exp2Tab[i] = math.Exp2(d)
	}
}

// lutSigmoid is the quantized tier's sigmoid: table lookup with linear
// interpolation, saturating to sigma(-16)~1.1e-7 / sigma(16)~1-1.1e-7
// at the endpoints (x -> +-Inf included). NaN returns 0.5 — the
// documented degradation for poisoned activations (the interpreted
// model would propagate the NaN into the verdict instead).
func lutSigmoid(x float64) float64 {
	if x != x {
		return 0.5
	}
	t := (x + sigRange) * sigStep
	if t <= 0 {
		return sigTab[0]
	}
	if t >= sigTabN {
		return sigTab[sigTabN]
	}
	i := int(t)
	f := t - float64(i)
	return sigTab[i] + (sigTab[i+1]-sigTab[i])*f
}

// lutSigT is lutSigmoid over a pre-transformed table index
// t = (x+sigRange)*sigStep — callers that can fold the transform into
// per-row constants skip the two float ops per lookup. NaN margins
// cannot reach it (quantization validates biases and the integer
// accumulators are always finite).
func lutSigT(t float64) float64 {
	if t <= 0 {
		return sigTab[0]
	}
	if t >= sigTabN {
		return sigTab[sigTabN]
	}
	i := int(t)
	f := t - float64(i)
	return sigTab[i] + (sigTab[i+1]-sigTab[i])*f
}

// qsigShift is the fraction width of the integer sigmoid index: the
// hidden layer maps its raw accumulator to a Q24 table index
// (qo + acc*qk) and qlutSigQ15 interpolates the Q15 activation from it
// without leaving integer arithmetic.
const qsigShift = 24

func qlutSigQ15(tq int64) int16 {
	if tq <= 0 {
		return qsigTab[0]
	}
	i := int(tq >> qsigShift)
	if i >= sigTabN {
		return qsigTab[sigTabN]
	}
	f := int32(tq>>(qsigShift-8)) & 255
	lo := int32(qsigTab[i])
	return int16(lo + ((int32(qsigTab[i+1])-lo)*f+128)>>8)
}

// lutExp2 returns 2^d for d <= 0, via the same interpolated-table
// scheme (d below -32 flushes to 0, far under any posterior mass that
// matters).
func lutExp2(d float64) float64 {
	t := (d + exp2Range) * exp2Step
	if t <= 0 {
		return 0
	}
	if t >= exp2TabN {
		return exp2Tab[exp2TabN]
	}
	i := int(t)
	f := t - float64(i)
	return exp2Tab[i] + (exp2Tab[i+1]-exp2Tab[i])*f
}
