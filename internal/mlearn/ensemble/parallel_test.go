// Parallel-training determinism tests live in an external test package
// because they round-trip models through mlearn/persist, which imports
// ensemble.
package ensemble_test

import (
	"bytes"
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/persist"
	"repro/internal/mlearn/reptree"
)

// trainBagged trains a bagged REPTree committee with the given worker
// count and returns the persist-serialized model bytes — exactly what
// a checkpoint would store.
func trainBagged(t *testing.T, workers int) (mlearn.Classifier, []byte) {
	t.Helper()
	train := mltest.Diagonal(300, 3)
	tr := &ensemble.Bagging{
		Base: func(it int) mlearn.Trainer {
			return &reptree.Trainer{MinLeaf: 2, Folds: 3, Seed: uint64(it) + 1}
		},
		Iterations: 8,
		Seed:       99,
		Workers:    workers,
	}
	c, err := tr.Train(train, nil)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := persist.Save(&buf, c); err != nil {
		t.Fatalf("workers=%d: persist: %v", workers, err)
	}
	return c, buf.Bytes()
}

// TestBaggingParallelBitIdentical is the determinism contract of
// Bagging.Workers: the serialized model bytes must not depend on the
// worker count, because every bag derives its bootstrap seed from
// (Seed, iteration) alone and lands at its own index.
func TestBaggingParallelBitIdentical(t *testing.T) {
	seqModel, seqBytes := trainBagged(t, 1)
	for _, workers := range []int{2, 4} {
		parModel, parBytes := trainBagged(t, workers)
		if !bytes.Equal(seqBytes, parBytes) {
			t.Fatalf("workers=%d: serialized model differs from sequential (%d vs %d bytes)",
				workers, len(parBytes), len(seqBytes))
		}
		test := mltest.Diagonal(200, 4)
		for i := range test.X {
			if mlearn.Predict(seqModel, test.X[i]) != mlearn.Predict(parModel, test.X[i]) {
				t.Fatalf("workers=%d: prediction diverges on row %d", workers, i)
			}
		}
	}
}
