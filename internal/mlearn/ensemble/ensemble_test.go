package ensemble

import (
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/sgd"
)

func stumpFactory(int) mlearn.Trainer {
	return &j48.Trainer{MinLeaf: 2, MaxDepth: 1, Unpruned: true}
}

func TestAdaBoostLiftsStumpsOnDiagonal(t *testing.T) {
	// The paper's central mechanism: weak base models + boosting beat
	// the base model alone. On a diagonal boundary an axis-aligned
	// stump tops out near 75%; 25 boosted stumps must clear 87%.
	// (Symmetric XOR is deliberately NOT used here: every axis-aligned
	// stump has 50% weighted error there, so AdaBoost provably cannot
	// start — the classic counterexample.)
	train := mltest.Diagonal(600, 1)
	test := mltest.Diagonal(400, 2)

	base, err := stumpFactory(0).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	accBase := mltest.Accuracy(base, test)
	if accBase > 0.85 {
		t.Fatalf("stump too strong (%.3f) for this test to be meaningful", accBase)
	}

	boost := NewAdaBoost(stumpFactory)
	boost.Iterations = 25
	c, err := boost.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	accBoost := mltest.Accuracy(c, test)
	if accBoost < accBase+0.05 || accBoost < 0.87 {
		t.Errorf("boosted stumps = %.3f, want >= 0.87 (base was %.3f)", accBoost, accBase)
	}
	mltest.AssertValidDistributions(t, c, test)
}

func TestAdaBoostGradedVotes(t *testing.T) {
	// Boosting hard-output learners yields graded committee scores —
	// the property that repairs SMO/OneR AUC in the paper.
	train := mltest.Blobs(300, 2, 3)
	boost := NewAdaBoost(func(it int) mlearn.Trainer {
		tr := sgd.New()
		tr.Seed = uint64(it + 1)
		return tr
	})
	c, err := boost.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*BoostedModel)
	if m.Len() < 2 {
		t.Skipf("committee collapsed to %d model(s); grading test not applicable", m.Len())
	}
	distinct := map[float64]bool{}
	for i := range train.X {
		distinct[c.Distribution(train.X[i])[1]] = true
	}
	if len(distinct) < 3 {
		t.Errorf("boosted committee produced only %d distinct scores; expected graded votes", len(distinct))
	}
}

func TestAdaBoostEarlyStopOnPerfection(t *testing.T) {
	// A fully separable problem is solved by the first J48; boosting
	// must stop early rather than run all iterations.
	train := mltest.Blobs(200, 10, 5)
	boost := NewAdaBoost(func(int) mlearn.Trainer { return j48.New() })
	boost.Iterations = 10
	c, err := boost.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.(*BoostedModel).Len(); n > 3 {
		t.Errorf("perfect base model should stop boosting early, got %d rounds", n)
	}
}

func TestAdaBoostResamplingMode(t *testing.T) {
	train := mltest.Diagonal(500, 7)
	test := mltest.Diagonal(300, 8)
	boost := NewAdaBoost(stumpFactory)
	boost.Iterations = 25
	boost.UseResampling = true
	c, err := boost.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c, test); acc < 0.8 {
		t.Errorf("resampling-mode boosting = %.3f, want >= 0.8", acc)
	}
}

func TestBaggingReducesVariance(t *testing.T) {
	// On noisy data an unpruned tree overfits; bagging should not be
	// worse, usually better.
	train := mltest.Blobs(400, 1.6, 9)
	test := mltest.Blobs(400, 1.6, 10)

	single, err := (&j48.Trainer{MinLeaf: 2, Unpruned: true}).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	bag := NewBagging(func(int) mlearn.Trainer {
		return &j48.Trainer{MinLeaf: 2, Unpruned: true}
	})
	c, err := bag.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	accSingle := mltest.Accuracy(single, test)
	accBag := mltest.Accuracy(c, test)
	if accBag < accSingle-0.03 {
		t.Errorf("bagging (%.3f) clearly worse than single tree (%.3f)", accBag, accSingle)
	}
	mltest.AssertValidDistributions(t, c, test)
}

func TestBaggingAveragesDistributions(t *testing.T) {
	train := mltest.Blobs(200, 2, 11)
	bag := NewBagging(func(int) mlearn.Trainer { return oner.New() })
	c, err := bag.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := c.(*BaggedModel)
	if m.Len() != 10 {
		t.Fatalf("bagging built %d models, want 10 (WEKA default)", m.Len())
	}
	// OneR bases are one-hot; the average over 10 bags on ambiguous
	// points should produce fractional scores somewhere.
	distinct := map[float64]bool{}
	for i := range train.X {
		distinct[c.Distribution(train.X[i])[1]] = true
	}
	if len(distinct) < 2 {
		t.Error("bagged OneR produced no graded scores at all")
	}
}

func TestBagPercent(t *testing.T) {
	train := mltest.Blobs(200, 5, 13)
	bag := NewBagging(func(int) mlearn.Trainer { return oner.New() })
	bag.BagPercent = 10
	c, err := bag.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c, train); acc < 0.8 {
		t.Errorf("10%% bags on separable data = %.3f", acc)
	}
}

func TestEnsembleErrors(t *testing.T) {
	if _, err := (&AdaBoost{}).Train(mltest.Blobs(10, 5, 1), nil); err == nil {
		t.Error("AdaBoost without base should fail")
	}
	if _, err := (&Bagging{}).Train(mltest.Blobs(10, 5, 1), nil); err == nil {
		t.Error("Bagging without base should fail")
	}
	boost := NewAdaBoost(stumpFactory)
	if _, err := boost.Train(nil, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if NewAdaBoost(nil).Name() != "AdaBoostM1" {
		t.Error("nil-base AdaBoost name wrong")
	}
	if NewBagging(nil).Name() != "Bagging" {
		t.Error("nil-base Bagging name wrong")
	}
}
