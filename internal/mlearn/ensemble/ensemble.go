// Package ensemble implements the two ensemble meta-learners the paper
// applies to every general classifier: AdaBoost.M1 (Freund & Schapire
// 1997) and Bagging (Breiman 1996), both with WEKA's default of 10
// iterations.
//
// The crucial property for the paper's robustness results: an
// AdaBoost/Bagging ensemble of hard-output base learners (OneR, SGD,
// SMO) produces *graded* vote-weighted scores, so the ensemble sweeps a
// real ROC curve even when the base model cannot — which is exactly how
// boosting repairs the AUC of SMO and OneR with only 2 HPCs.
package ensemble

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// AdaBoost is the AdaBoost.M1 meta-trainer.
type AdaBoost struct {
	// Base is the weak-learner factory: it must return a fresh trainer
	// per iteration (trainers may keep state such as seeds).
	Base func(iteration int) mlearn.Trainer
	// Iterations is the maximum number of boosting rounds (WEKA
	// default 10).
	Iterations int
	// UseResampling trains each round on a weighted bootstrap instead
	// of passing weights through (for base learners that ignore
	// weights). WEKA's -Q option.
	UseResampling bool
	// Seed drives resampling.
	Seed uint64
}

// NewAdaBoost wraps base construction with WEKA defaults.
func NewAdaBoost(base func(int) mlearn.Trainer) *AdaBoost {
	return &AdaBoost{Base: base, Iterations: 10, Seed: 1}
}

// Name implements mlearn.Trainer.
func (t *AdaBoost) Name() string {
	if t.Base == nil {
		return "AdaBoostM1"
	}
	return "AdaBoostM1+" + t.Base(0).Name()
}

// BoostedModel is a trained AdaBoost.M1 ensemble.
type BoostedModel struct {
	Models     []mlearn.Classifier
	Alphas     []float64 // log((1-err)/err) vote weights
	NumClasses int

	// scratch holds one base model's distribution during the vote loop.
	// Unexported so gob checkpoints skip it; lazily sized because
	// decoded models arrive with it nil.
	scratch []float64
}

// Len returns the number of base models in the committee.
func (m *BoostedModel) Len() int { return len(m.Models) }

// Distribution implements mlearn.Classifier: alpha-weighted votes of
// the base models' predictions, normalised.
func (m *BoostedModel) Distribution(x []float64) []float64 {
	votes := make([]float64, m.NumClasses)
	m.DistributionInto(x, votes)
	return votes
}

// DistributionInto implements mlearn.StreamingClassifier: the votes
// accumulate directly in out and each base prediction goes through the
// shared scratch buffer, so a committee of streaming bases classifies
// with zero allocations. Not safe for concurrent calls.
func (m *BoostedModel) DistributionInto(x []float64, out []float64) {
	if len(m.scratch) != m.NumClasses {
		m.scratch = make([]float64, m.NumClasses)
	}
	votes := out[:m.NumClasses]
	for i := range votes {
		votes[i] = 0
	}
	for i, base := range m.Models {
		votes[mlearn.PredictWith(base, x, m.scratch)] += m.Alphas[i]
	}
	total := 0.0
	for _, v := range votes {
		total += v
	}
	if total <= 0 {
		for i := range votes {
			votes[i] = 1 / float64(m.NumClasses)
		}
		return
	}
	for i := range votes {
		votes[i] /= total
	}
}

// Train implements mlearn.Trainer.
func (t *AdaBoost) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if t.Base == nil {
		return nil, errors.New("ensemble: AdaBoost needs a base trainer")
	}
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	iters := t.Iterations
	if iters <= 0 {
		iters = 10
	}
	n := d.NumRows()
	w := mlearn.UniformWeights(d, weights)

	model := &BoostedModel{NumClasses: d.NumClasses()}
	const epsilon = 1e-10
	for it := 0; it < iters; it++ {
		trainer := t.Base(it)
		var base mlearn.Classifier
		var err error
		if t.UseResampling {
			sample := mlearn.Resample(d, w, n, t.Seed+uint64(it)*0x9e37)
			base, err = trainer.Train(sample, nil)
		} else {
			base, err = trainer.Train(d, w)
		}
		if err != nil {
			return nil, fmt.Errorf("ensemble: boosting round %d: %v", it, err)
		}

		// Weighted training error of this round's model.
		var errW, totalW float64
		miss := make([]bool, n)
		for i := 0; i < n; i++ {
			totalW += w[i]
			if mlearn.Predict(base, d.X[i]) != d.Y[i] {
				miss[i] = true
				errW += w[i]
			}
		}
		e := errW / totalW

		if e >= 0.5 {
			// Weak-learning assumption violated: stop. Keep the model
			// only if the committee would otherwise be empty.
			if len(model.Models) == 0 {
				model.Models = append(model.Models, base)
				model.Alphas = append(model.Alphas, 1)
			}
			break
		}
		if e < epsilon {
			// Perfect model: give it a large (finite) vote and stop.
			model.Models = append(model.Models, base)
			model.Alphas = append(model.Alphas, math.Log((1-epsilon)/epsilon))
			break
		}

		alpha := math.Log((1 - e) / e)
		model.Models = append(model.Models, base)
		model.Alphas = append(model.Alphas, alpha)

		// Reweight: misclassified instances gain weight.
		beta := e / (1 - e)
		newTotal := 0.0
		for i := 0; i < n; i++ {
			if !miss[i] {
				w[i] *= beta
			}
			newTotal += w[i]
		}
		// Renormalise to total n (the WEKA convention).
		scale := float64(n) / newTotal
		for i := range w {
			w[i] *= scale
		}
	}
	if len(model.Models) == 0 {
		return nil, errors.New("ensemble: boosting produced no usable model")
	}
	return model, nil
}

// Bagging is the bootstrap-aggregation meta-trainer.
type Bagging struct {
	// Base is the base-learner factory, fresh per bag.
	Base func(iteration int) mlearn.Trainer
	// Iterations is the number of bags (WEKA default 10).
	Iterations int
	// BagPercent is the bootstrap size as a percentage of the training
	// set (WEKA default 100).
	BagPercent float64
	// Seed drives the bootstrap sampling.
	Seed uint64
	// Workers bounds the goroutines training bags concurrently: 0 uses
	// GOMAXPROCS, 1 trains sequentially. Any value produces the same
	// model bytes — every bag derives its bootstrap seed from (Seed,
	// iteration) alone and lands at its own index.
	Workers int
}

// NewBagging wraps base construction with WEKA defaults.
func NewBagging(base func(int) mlearn.Trainer) *Bagging {
	return &Bagging{Base: base, Iterations: 10, BagPercent: 100, Seed: 1}
}

// Name implements mlearn.Trainer.
func (t *Bagging) Name() string {
	if t.Base == nil {
		return "Bagging"
	}
	return "Bagging+" + t.Base(0).Name()
}

// BaggedModel averages the base models' distributions.
type BaggedModel struct {
	Models     []mlearn.Classifier
	NumClasses int

	// scratch holds one base model's distribution during averaging.
	// Unexported so gob checkpoints skip it; lazily sized because
	// decoded models arrive with it nil.
	scratch []float64
}

// Len returns the number of base models.
func (m *BaggedModel) Len() int { return len(m.Models) }

// Distribution implements mlearn.Classifier.
func (m *BaggedModel) Distribution(x []float64) []float64 {
	avg := make([]float64, m.NumClasses)
	m.DistributionInto(x, avg)
	return avg
}

// DistributionInto implements mlearn.StreamingClassifier: base
// distributions stream through the shared scratch buffer and average
// directly into out. Not safe for concurrent calls.
func (m *BaggedModel) DistributionInto(x []float64, out []float64) {
	if len(m.scratch) != m.NumClasses {
		m.scratch = make([]float64, m.NumClasses)
	}
	avg := out[:m.NumClasses]
	for c := range avg {
		avg[c] = 0
	}
	for _, base := range m.Models {
		mlearn.DistributionInto(base, x, m.scratch)
		for c, p := range m.scratch {
			avg[c] += p
		}
	}
	for c := range avg {
		avg[c] /= float64(len(m.Models))
	}
}

// Train implements mlearn.Trainer.
func (t *Bagging) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if t.Base == nil {
		return nil, errors.New("ensemble: Bagging needs a base trainer")
	}
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	iters := t.Iterations
	if iters <= 0 {
		iters = 10
	}
	pct := t.BagPercent
	if pct <= 0 {
		pct = 100
	}
	size := int(float64(d.NumRows()) * pct / 100)
	if size < 1 {
		size = 1
	}

	model := &BaggedModel{NumClasses: d.NumClasses(), Models: make([]mlearn.Classifier, iters)}
	trainBag := func(it int) (mlearn.Classifier, error) {
		bag := mlearn.Resample(d, weights, size, t.Seed+uint64(it)*0x85eb)
		return t.Base(it).Train(bag, nil)
	}

	workers := t.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > iters {
		workers = iters
	}

	if workers == 1 {
		for it := 0; it < iters; it++ {
			base, err := trainBag(it)
			if err != nil {
				return nil, fmt.Errorf("ensemble: bag %d: %v", it, err)
			}
			model.Models[it] = base
		}
		return model, nil
	}

	// Bags are independent given their derived seeds, so they train on a
	// worker pool and land at their own index — the committee is
	// byte-identical to the sequential order. Errors keep sequential
	// semantics by reporting the lowest failing bag.
	errs := make([]error, iters)
	var wg sync.WaitGroup
	next := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range next {
				base, err := trainBag(it)
				if err != nil {
					errs[it] = err
					continue
				}
				model.Models[it] = base
			}
		}()
	}
	for it := 0; it < iters; it++ {
		next <- it
	}
	close(next)
	wg.Wait()
	for it, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ensemble: bag %d: %v", it, err)
		}
	}
	return model, nil
}
