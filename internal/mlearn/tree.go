package mlearn

import "math"

// TreeNode is the shared binary decision-tree representation used by
// the J48 and REPTree learners and consumed by the HLS model compiler.
// Internal nodes route on Attr < Threshold (left) vs >= (right); leaves
// carry a class distribution.
type TreeNode struct {
	Leaf      bool
	Dist      []float64 // leaf class distribution (sums to 1)
	Attr      int       // split attribute (internal nodes)
	Threshold float64   // split threshold
	Left      *TreeNode // Attr <  Threshold
	Right     *TreeNode // Attr >= Threshold
}

// Distribution walks the tree and returns the leaf distribution for x.
func (n *TreeNode) Distribution(x []float64) []float64 {
	node := n
	for !node.Leaf {
		if x[node.Attr] < node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	return node.Dist
}

// DistributionInto walks the tree and copies the leaf distribution for
// x into out — the zero-allocation fast path (trees keep no scratch, so
// unlike stateful models this is safe for concurrent callers).
func (n *TreeNode) DistributionInto(x []float64, out []float64) {
	node := n
	for !node.Leaf {
		if x[node.Attr] < node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	copy(out, node.Dist)
}

// Depth returns the maximum root-to-leaf edge count.
func (n *TreeNode) Depth() int {
	if n.Leaf {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

// Count returns the number of internal and leaf nodes.
func (n *TreeNode) Count() (internal, leaves int) {
	if n.Leaf {
		return 0, 1
	}
	li, ll := n.Left.Count()
	ri, rl := n.Right.Count()
	return li + ri + 1, ll + rl
}

// Probit approximates the standard normal inverse CDF (Acklam's
// rational approximation, |relative error| < 1.15e-9). Used for C4.5's
// pessimistic error bound.
func Probit(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	e := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((e[0]*q+e[1])*q+e[2])*q+e[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((e[0]*q+e[1])*q+e[2])*q+e[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// AddErrs computes C4.5's pessimistic additional-error estimate (WEKA's
// Stats.addErrs): given N weighted instances with e weighted errors at
// a leaf, the expected extra errors under confidence CF.
func AddErrs(n, e, cf float64) float64 {
	if cf > 0.5 {
		return e + 1
	}
	if e < 1 {
		base := n * (1 - math.Pow(cf, 1/n))
		if e == 0 {
			return base
		}
		return base + e*(AddErrs(n, 1, cf)-base)
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := Probit(1 - cf)
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}
