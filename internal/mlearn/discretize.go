package mlearn

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// Discretizer holds per-attribute cut points produced by supervised
// MDL discretization (Fayyad & Irani 1993), the method WEKA applies
// inside BayesNet for numeric attributes.
type Discretizer struct {
	Cuts [][]float64 // ascending cut points per attribute
}

// Bin maps value v of attribute j to its bin index.
func (dz *Discretizer) Bin(j int, v float64) int {
	cuts := dz.Cuts[j]
	// Binary search: number of cuts <= v.
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Bins returns the number of bins for attribute j.
func (dz *Discretizer) Bins(j int) int { return len(dz.Cuts[j]) + 1 }

type sortedVal struct {
	v float64
	y int
	w float64
}

// FitMDL learns cut points for every attribute of d using recursive
// entropy minimisation with the MDL stopping criterion. weights must
// have one entry per row (use UniformWeights).
func FitMDL(d *dataset.Instances, weights []float64) *Discretizer {
	k := d.NumClasses()
	dz := &Discretizer{Cuts: make([][]float64, d.NumAttrs())}
	for j := 0; j < d.NumAttrs(); j++ {
		vals := make([]sortedVal, len(d.X))
		for i := range d.X {
			vals[i] = sortedVal{v: d.X[i][j], y: d.Y[i], w: weights[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		var cuts []float64
		mdlSplit(vals, k, &cuts)
		sort.Float64s(cuts)
		dz.Cuts[j] = cuts
	}
	return dz
}

// mdlSplit recursively finds the best entropy split of vals and keeps
// it if the MDL criterion accepts it.
func mdlSplit(vals []sortedVal, k int, cuts *[]float64) {
	n := len(vals)
	if n < 4 {
		return
	}
	total := make([]float64, k)
	totalW := 0.0
	for _, v := range vals {
		total[v.y] += v.w
		totalW += v.w
	}
	baseEnt := Entropy(total)
	if baseEnt == 0 {
		return
	}

	left := make([]float64, k)
	leftW := 0.0
	bestGain, bestIdx := 0.0, -1
	var bestLeftEnt, bestRightEnt float64
	var bestLeftK, bestRightK int

	right := append([]float64(nil), total...)
	for i := 0; i < n-1; i++ {
		left[vals[i].y] += vals[i].w
		right[vals[i].y] -= vals[i].w
		leftW += vals[i].w
		if vals[i+1].v <= vals[i].v {
			continue // can only cut between distinct values
		}
		le, re := Entropy(left), Entropy(right)
		ent := (leftW*le + (totalW-leftW)*re) / totalW
		gain := baseEnt - ent
		if gain > bestGain {
			bestGain, bestIdx = gain, i
			bestLeftEnt, bestRightEnt = le, re
			bestLeftK, bestRightK = classesPresent(left), classesPresent(right)
		}
	}
	if bestIdx < 0 {
		return
	}

	// MDL acceptance (Fayyad–Irani): gain must exceed
	// (log2(n-1) + log2(3^kPresent - 2) - kPresent*E + kl*El + kr*Er)/n
	// computed with instance counts; we use weighted totals.
	kPresent := classesPresent(total)
	delta := math.Log2(math.Pow(3, float64(kPresent))-2) -
		(float64(kPresent)*baseEnt - float64(bestLeftK)*bestLeftEnt - float64(bestRightK)*bestRightEnt)
	threshold := (math.Log2(float64(n)-1) + delta) / float64(n)
	if bestGain <= threshold {
		return
	}

	cut := (vals[bestIdx].v + vals[bestIdx+1].v) / 2
	*cuts = append(*cuts, cut)
	mdlSplit(vals[:bestIdx+1], k, cuts)
	mdlSplit(vals[bestIdx+1:], k, cuts)
}

func classesPresent(counts []float64) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}
