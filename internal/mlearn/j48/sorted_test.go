package j48

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mlearn/mltest"
)

// TestSortedIndexMatchesLegacySplit checks the sorted-index split
// search against the legacy per-node sort on tie-free continuous data
// (with tied attribute values the legacy engine's unstable sort makes
// the node order unspecified, so equivalence is only promised without
// ties — which real HPC readings essentially never produce).
func TestSortedIndexMatchesLegacySplit(t *testing.T) {
	sets := map[string]*dataset.Instances{
		"blobs":    mltest.Blobs(400, 2.0, 5),
		"xor":      mltest.XOR(400, 6),
		"diagonal": mltest.Diagonal(300, 7),
	}
	for name, train := range sets {
		for _, cfg := range []struct {
			label string
			mk    func() *Trainer
		}{
			{"pruned", New},
			{"unpruned", func() *Trainer { return &Trainer{MinLeaf: 2, Unpruned: true} }},
			{"stump", func() *Trainer { return &Trainer{MinLeaf: 2, MaxDepth: 1, Unpruned: true} }},
		} {
			legacy := cfg.mk()
			legacy.LegacySplit = true
			fast := cfg.mk()
			cl, err := legacy.Train(train, nil)
			if err != nil {
				t.Fatalf("%s/%s legacy: %v", name, cfg.label, err)
			}
			cf, err := fast.Train(train, nil)
			if err != nil {
				t.Fatalf("%s/%s sorted: %v", name, cfg.label, err)
			}
			if !reflect.DeepEqual(cl, cf) {
				t.Errorf("%s/%s: sorted-index tree differs from legacy tree", name, cfg.label)
			}
		}
	}
}
