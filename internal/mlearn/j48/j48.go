// Package j48 implements the C4.5 decision-tree learner (Quinlan 1993),
// the algorithm behind WEKA's J48: binary splits on numeric attributes
// chosen by gain ratio, followed by pessimistic (confidence-bound)
// subtree-replacement pruning with C4.5's default confidence 0.25.
package j48

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// Trainer builds J48 trees.
type Trainer struct {
	// MinLeaf is the minimum weighted instance count per leaf (WEKA
	// minNumObj, default 2).
	MinLeaf float64
	// Confidence is the pruning confidence factor (WEKA default 0.25).
	// Zero disables pruning only if Unpruned is set.
	Confidence float64
	// Unpruned disables pessimistic pruning.
	Unpruned bool
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int
	// LegacySplit selects the original per-node gather-and-sort split
	// search instead of the sorted-index engine. Kept as the baseline
	// for the perf experiment and for A/B equivalence tests.
	LegacySplit bool
}

// New returns a J48 trainer with WEKA defaults.
func New() *Trainer { return &Trainer{MinLeaf: 2, Confidence: 0.25} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "J48" }

// Model is a trained C4.5 tree.
type Model struct {
	Root *mlearn.TreeNode
}

// Distribution implements mlearn.Classifier.
func (m *Model) Distribution(x []float64) []float64 { return m.Root.Distribution(x) }

// trainData is the working set view used during induction.
type trainData struct {
	d *dataset.Instances
	w []float64
	k int
}

// Train implements mlearn.Trainer.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	td := &trainData{d: d, w: mlearn.UniformWeights(d, weights), k: d.NumClasses()}
	idx := make([]int, d.NumRows())
	for i := range idx {
		idx[i] = i
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	var root *mlearn.TreeNode
	if t.LegacySplit {
		root = t.grow(td, idx, 0, minLeaf)
	} else {
		ao := mlearn.NewAttrOrder(d.X, idx)
		root = t.growSorted(td, ao, 0, minLeaf, make([]int32, len(idx)))
	}
	if !t.Unpruned {
		cf := t.Confidence
		if cf <= 0 {
			cf = 0.25
		}
		prune(td, root, idx, cf)
	}
	return &Model{Root: root}, nil
}

// classCounts returns weighted class counts over idx.
func (td *trainData) classCounts(idx []int) []float64 {
	counts := make([]float64, td.k)
	for _, i := range idx {
		counts[td.d.Y[i]] += td.w[i]
	}
	return counts
}

// classCounts32 is classCounts over a sorted-index row list.
func (td *trainData) classCounts32(rows []int32) []float64 {
	counts := make([]float64, td.k)
	for _, i := range rows {
		counts[td.d.Y[i]] += td.w[i]
	}
	return counts
}

func leafFromCounts(counts []float64) *mlearn.TreeNode {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	dist := make([]float64, len(counts))
	if total > 0 {
		for i, c := range counts {
			dist[i] = c / total
		}
	} else {
		for i := range dist {
			dist[i] = 1 / float64(len(dist))
		}
	}
	return &mlearn.TreeNode{Leaf: true, Dist: dist}
}

// grow recursively induces the tree over the rows in idx.
func (t *Trainer) grow(td *trainData, idx []int, depth int, minLeaf float64) *mlearn.TreeNode {
	counts := td.classCounts(idx)
	total := 0.0
	nonZero := 0
	for _, c := range counts {
		total += c
		if c > 0 {
			nonZero++
		}
	}
	if nonZero <= 1 || total < 2*minLeaf || (t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return leafFromCounts(counts)
	}

	attr, threshold, ok := bestGainRatioSplit(td, idx, counts, minLeaf)
	if !ok {
		return leafFromCounts(counts)
	}

	var left, right []int
	for _, i := range idx {
		if td.d.X[i][attr] < threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leafFromCounts(counts)
	}
	return &mlearn.TreeNode{
		Attr:      attr,
		Threshold: threshold,
		Left:      t.grow(td, left, depth+1, minLeaf),
		Right:     t.grow(td, right, depth+1, minLeaf),
	}
}

// growSorted is grow on the sorted-index engine: the per-attribute row
// orders built once at the root are partitioned — never re-sorted — on
// the way down, so split search at each node is a linear walk.
func (t *Trainer) growSorted(td *trainData, ao mlearn.AttrOrder, depth int, minLeaf float64, scratch []int32) *mlearn.TreeNode {
	counts := td.classCounts32(ao.Rows())
	total := 0.0
	nonZero := 0
	for _, c := range counts {
		total += c
		if c > 0 {
			nonZero++
		}
	}
	if nonZero <= 1 || total < 2*minLeaf || (t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return leafFromCounts(counts)
	}

	attr, threshold, ok := bestGainRatioSplitSorted(td, ao, counts, minLeaf)
	if !ok {
		return leafFromCounts(counts)
	}

	left, right, nLeft := ao.Split(td.d.X, attr, threshold, scratch)
	if nLeft == 0 || right.Len() == 0 {
		return leafFromCounts(counts)
	}
	return &mlearn.TreeNode{
		Attr:      attr,
		Threshold: threshold,
		Left:      t.growSorted(td, left, depth+1, minLeaf, scratch),
		Right:     t.growSorted(td, right, depth+1, minLeaf, scratch),
	}
}

// bestGainRatioSplitSorted is bestGainRatioSplit walking each
// attribute's pre-sorted row order instead of gathering and sorting the
// node's values. The class-count buffers are reused across attributes;
// the prefix-weight accumulation visits rows in the same ascending
// order as the legacy sweep, so gains and thresholds match it exactly
// on tie-free data.
func bestGainRatioSplitSorted(td *trainData, ao mlearn.AttrOrder, parentCounts []float64, minLeaf float64) (attr int, threshold float64, ok bool) {
	parentEnt := mlearn.Entropy(parentCounts)
	totalW := 0.0
	for _, c := range parentCounts {
		totalW += c
	}

	type cand struct {
		attr      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []cand

	left := make([]float64, td.k)
	right := make([]float64, td.k)

	for j := range ao.Orders {
		ord := ao.Orders[j]
		for c := range left {
			left[c] = 0
		}
		copy(right, parentCounts)
		leftW := 0.0
		bestGain, bestTh, bestLW := 0.0, 0.0, 0.0
		found := false
		for p := 0; p < len(ord)-1; p++ {
			i := ord[p]
			left[td.d.Y[i]] += td.w[i]
			right[td.d.Y[i]] -= td.w[i]
			leftW += td.w[i]
			v, next := td.d.X[i][j], td.d.X[ord[p+1]][j]
			if next <= v {
				continue
			}
			rightW := totalW - leftW
			if leftW < minLeaf || rightW < minLeaf {
				continue
			}
			ent := (leftW*mlearn.Entropy(left) + rightW*mlearn.Entropy(right)) / totalW
			gain := parentEnt - ent
			if gain > bestGain {
				bestGain = gain
				bestTh = (v + next) / 2
				// Sorted order means rows with value < bestTh are exactly
				// this prefix, so leftW doubles as the split info's left
				// weight — no second pass.
				bestLW = leftW
				found = true
			}
		}
		if !found || bestGain <= 1e-12 {
			continue
		}
		si := mlearn.Entropy([]float64{bestLW, totalW - bestLW})
		if si <= 1e-12 {
			continue
		}
		cands = append(cands, cand{attr: j, threshold: bestTh, gain: bestGain, ratio: bestGain / si})
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	avgGain := 0.0
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))

	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return cands[best].attr, cands[best].threshold, true
}

// bestGainRatioSplit scans every attribute for the threshold maximising
// information gain, then picks the attribute with the best gain ratio
// among splits with at least average gain (C4.5's heuristic).
func bestGainRatioSplit(td *trainData, idx []int, parentCounts []float64, minLeaf float64) (attr int, threshold float64, ok bool) {
	parentEnt := mlearn.Entropy(parentCounts)
	totalW := 0.0
	for _, c := range parentCounts {
		totalW += c
	}

	type cand struct {
		attr      int
		threshold float64
		gain      float64
		ratio     float64
	}
	var cands []cand

	vals := make([]struct {
		v float64
		y int
		w float64
	}, len(idx))

	for j := 0; j < td.d.NumAttrs(); j++ {
		for p, i := range idx {
			vals[p].v = td.d.X[i][j]
			vals[p].y = td.d.Y[i]
			vals[p].w = td.w[i]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

		left := make([]float64, td.k)
		right := append([]float64(nil), parentCounts...)
		leftW := 0.0
		bestGain, bestTh := 0.0, 0.0
		found := false
		for p := 0; p < len(vals)-1; p++ {
			left[vals[p].y] += vals[p].w
			right[vals[p].y] -= vals[p].w
			leftW += vals[p].w
			if vals[p+1].v <= vals[p].v {
				continue
			}
			rightW := totalW - leftW
			if leftW < minLeaf || rightW < minLeaf {
				continue
			}
			ent := (leftW*mlearn.Entropy(left) + rightW*mlearn.Entropy(right)) / totalW
			gain := parentEnt - ent
			if gain > bestGain {
				bestGain = gain
				bestTh = (vals[p].v + vals[p+1].v) / 2
				found = true
			}
		}
		if !found || bestGain <= 1e-12 {
			continue
		}
		// Split info for the binary partition at the chosen threshold.
		lw := 0.0
		for p := range vals {
			if vals[p].v < bestTh {
				lw += vals[p].w
			}
		}
		si := mlearn.Entropy([]float64{lw, totalW - lw})
		if si <= 1e-12 {
			continue
		}
		cands = append(cands, cand{attr: j, threshold: bestTh, gain: bestGain, ratio: bestGain / si})
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	avgGain := 0.0
	for _, c := range cands {
		avgGain += c.gain
	}
	avgGain /= float64(len(cands))

	best := -1
	for i, c := range cands {
		if c.gain+1e-12 < avgGain {
			continue
		}
		if best < 0 || c.ratio > cands[best].ratio {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	return cands[best].attr, cands[best].threshold, true
}

// prune performs C4.5 subtree-replacement pruning in place, returning
// the pessimistic error estimate of the (possibly replaced) node.
func prune(td *trainData, n *mlearn.TreeNode, idx []int, cf float64) float64 {
	counts := td.classCounts(idx)
	total := 0.0
	maxC := 0.0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	leafErr := total - maxC
	leafEst := leafErr
	if total > 0 {
		leafEst += mlearn.AddErrs(total, leafErr, cf)
	}

	if n.Leaf {
		return leafEst
	}

	var left, right []int
	for _, i := range idx {
		if td.d.X[i][n.Attr] < n.Threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	subEst := prune(td, n.Left, left, cf) + prune(td, n.Right, right, cf)

	if leafEst <= subEst+1e-9 {
		// Replace the subtree with a leaf.
		leaf := leafFromCounts(counts)
		*n = *leaf
		return leafEst
	}
	return subEst
}

// Size returns (internal nodes, leaves) of the trained tree.
func (m *Model) Size() (internal, leaves int) { return m.Root.Count() }

// Depth returns the tree depth.
func (m *Model) Depth() int { return m.Root.Depth() }
