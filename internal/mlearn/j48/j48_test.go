package j48

import (
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/mltest"
)

func TestJ48SolvesXOR(t *testing.T) {
	train := mltest.XOR(400, 1)
	test := mltest.XOR(300, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)

	m := c.(*Model)
	if m.Depth() < 2 {
		t.Errorf("XOR needs depth >= 2, got %d", m.Depth())
	}
}

func TestJ48PruningShrinksTree(t *testing.T) {
	// Noisy blobs: the unpruned tree should be larger than the pruned
	// one, and pruning should not devastate accuracy.
	train := mltest.Blobs(400, 2, 3)
	test := mltest.Blobs(300, 2, 4)

	unpruned := &Trainer{MinLeaf: 2, Unpruned: true}
	pruned := New()

	cu, err := unpruned.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pruned.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	iu, lu := cu.(*Model).Size()
	ip, lp := cp.(*Model).Size()
	if ip+lp > iu+lu {
		t.Errorf("pruned tree (%d) larger than unpruned (%d)", ip+lp, iu+lu)
	}
	accU := mltest.Accuracy(cu, test)
	accP := mltest.Accuracy(cp, test)
	if accP < accU-0.08 {
		t.Errorf("pruning cost too much accuracy: %.3f vs %.3f", accP, accU)
	}
}

func TestJ48MaxDepthStump(t *testing.T) {
	train := mltest.XOR(300, 5)
	stump := &Trainer{MinLeaf: 2, MaxDepth: 1, Unpruned: true}
	c, err := stump.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.(*Model).Depth(); d > 1 {
		t.Errorf("stump depth = %d, want <= 1", d)
	}
	// A stump cannot solve XOR.
	if acc := mltest.Accuracy(c, train); acc > 0.7 {
		t.Errorf("stump on XOR = %.3f, expected <= 0.7", acc)
	}
}

func TestJ48PureLeafShortCircuit(t *testing.T) {
	// A trivially separable set must produce a small tree with
	// confident leaves.
	train := mltest.Blobs(200, 8, 5)
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc := mltest.Accuracy(c, train); acc < 0.97 {
		t.Errorf("train accuracy on separable data = %.3f", acc)
	}
	internal, _ := c.(*Model).Size()
	if internal > 8 {
		t.Errorf("tree has %d internal nodes for a linearly separable blob pair", internal)
	}
}

func TestJ48WeightsChangeTree(t *testing.T) {
	train := mltest.Blobs(200, 2, 6)
	w := make([]float64, train.NumRows())
	for i := range w {
		if train.Y[i] == 1 {
			w[i] = 10
		} else {
			w[i] = 0.1
		}
	}
	cu, _ := New().Train(train, nil)
	cw, _ := New().Train(train, w)
	// The weighted tree should favour class 1 much more often.
	flips := 0
	for i := range train.X {
		if mlearn.Predict(cw, train.X[i]) == 1 && mlearn.Predict(cu, train.X[i]) == 0 {
			flips++
		}
	}
	pred1 := 0
	for i := range train.X {
		if mlearn.Predict(cw, train.X[i]) == 1 {
			pred1++
		}
	}
	if pred1 < train.NumRows()/2 {
		t.Errorf("heavily class-1-weighted tree predicts 1 only %d/%d times", pred1, train.NumRows())
	}
	_ = flips
}

func TestJ48Trainable(t *testing.T) {
	if _, err := New().Train(nil, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if New().Name() != "J48" {
		t.Error("name wrong")
	}
}
