package bayesnet

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mlearn/mltest"
)

func TestBayesNetBlobs(t *testing.T) {
	train := mltest.Blobs(300, 5, 1)
	test := mltest.Blobs(200, 5, 2)
	c := mltest.AssertAccuracyAbove(t, New(), train, test, 0.9)
	mltest.AssertValidDistributions(t, c, test)
}

func TestBayesNetGradedPosterior(t *testing.T) {
	// Unlike SMO/OneR, BayesNet must produce genuinely graded
	// probabilities — the property behind its strong AUC in the paper.
	train := mltest.Blobs(400, 2.5, 3) // overlapping classes
	c, err := New().Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	graded := 0
	for i := range train.X {
		p := c.Distribution(train.X[i])[1]
		if p > 0.05 && p < 0.95 {
			graded++
		}
	}
	if graded < 10 {
		t.Errorf("only %d/%d graded posteriors; expected genuinely probabilistic output", graded, train.NumRows())
	}
}

func TestBayesNetPriorFallback(t *testing.T) {
	// With a single useless attribute, the posterior should be close
	// to the class prior.
	d := dataset.New([]string{"junk"}, dataset.BinaryClassNames())
	for i := 0; i < 90; i++ {
		y := 0
		if i%3 == 0 {
			y = 1
		}
		_ = d.Add([]float64{1}, y, map[int]string{0: "b", 1: "m"}[y]) // constant attr
	}
	c, err := New().Train(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Distribution([]float64{1})
	if math.Abs(p[0]-2.0/3) > 0.05 {
		t.Errorf("posterior %v should approximate the prior [0.67 0.33]", p)
	}
}

func TestBayesNetWeightsInfluence(t *testing.T) {
	// Same data, weights concentrated on class-1 rows: the prior (and
	// hence posterior on an uninformative point) should shift.
	d := dataset.New([]string{"v"}, dataset.BinaryClassNames())
	for i := 0; i < 60; i++ {
		y := i % 2
		_ = d.Add([]float64{float64(i % 4)}, y, map[int]string{0: "b", 1: "m"}[y])
	}
	w := make([]float64, 60)
	for i := range w {
		if i%2 == 1 {
			w[i] = 9
		} else {
			w[i] = 1
		}
	}
	c, err := New().Train(d, w)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Distribution([]float64{1.5})
	if p[1] < 0.7 {
		t.Errorf("posterior %v should be dominated by the upweighted class", p)
	}
}

func TestBayesNetUnderflowResistance(t *testing.T) {
	// Many attributes with tiny conditional probabilities must not
	// underflow to a zero posterior.
	names := make([]string, 40)
	for i := range names {
		names[i] = "a" + string(rune('0'+i%10)) + string(rune('a'+i/10))
	}
	d := dataset.New(names, dataset.BinaryClassNames())
	for i := 0; i < 200; i++ {
		y := i % 2
		x := make([]float64, 40)
		for j := range x {
			x[j] = float64((i*7+j*13)%100)/10 + float64(y)
		}
		_ = d.Add(x, y, map[int]string{0: "b", 1: "m"}[y])
	}
	c, err := New().Train(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	mltest.AssertValidDistributions(t, c, d)
}
