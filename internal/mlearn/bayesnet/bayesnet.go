// Package bayesnet implements the BayesNet detector: WEKA's BayesNet
// with its default K2 search (max one parent) degenerates to a
// naive-Bayes structure over supervised-discretized attributes, which
// is what this package builds — per-attribute MDL discretization
// (Fayyad–Irani) followed by a naive-Bayes network with Laplace
// smoothing on the conditional probability tables.
//
// BayesNet's probability outputs are well calibrated, which is why the
// paper measures a high, HPC-count-insensitive AUC (~0.92) for it.
package bayesnet

import (
	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// Trainer builds BayesNet models.
type Trainer struct {
	// Alpha is the Laplace smoothing pseudo-count (WEKA estimator
	// default 0.5).
	Alpha float64
}

// New returns a BayesNet trainer with WEKA defaults.
func New() *Trainer { return &Trainer{Alpha: 0.5} }

// Name implements mlearn.Trainer.
func (t *Trainer) Name() string { return "BayesNet" }

// Model is a trained naive-Bayes network over discretized attributes.
type Model struct {
	Disc  *mlearn.Discretizer
	Prior []float64     // class prior
	CPT   [][][]float64 // CPT[attr][class][bin] = P(bin|class)
}

// Train implements mlearn.Trainer.
func (t *Trainer) Train(d *dataset.Instances, weights []float64) (mlearn.Classifier, error) {
	if err := mlearn.CheckTrainable(d, weights); err != nil {
		return nil, err
	}
	w := mlearn.UniformWeights(d, weights)
	alpha := t.Alpha
	if alpha <= 0 {
		alpha = 0.5
	}

	disc := mlearn.FitMDL(d, w)
	k := d.NumClasses()
	nA := d.NumAttrs()

	classW := make([]float64, k)
	for i, y := range d.Y {
		classW[y] += w[i]
	}
	totalW := 0.0
	for _, cw := range classW {
		totalW += cw
	}

	prior := make([]float64, k)
	for c := range prior {
		prior[c] = (classW[c] + alpha) / (totalW + alpha*float64(k))
	}

	cpt := make([][][]float64, nA)
	for j := 0; j < nA; j++ {
		bins := disc.Bins(j)
		cpt[j] = make([][]float64, k)
		for c := range cpt[j] {
			cpt[j][c] = make([]float64, bins)
		}
		for i := range d.X {
			cpt[j][d.Y[i]][disc.Bin(j, d.X[i][j])] += w[i]
		}
		for c := 0; c < k; c++ {
			for b := 0; b < bins; b++ {
				cpt[j][c][b] = (cpt[j][c][b] + alpha) / (classW[c] + alpha*float64(bins))
			}
		}
	}

	return &Model{Disc: disc, Prior: prior, CPT: cpt}, nil
}

// Distribution implements mlearn.Classifier: the naive-Bayes posterior.
func (m *Model) Distribution(x []float64) []float64 {
	post := make([]float64, len(m.Prior))
	m.DistributionInto(x, post)
	return post
}

// DistributionInto implements mlearn.StreamingClassifier, computing the
// posterior directly in out. The model holds no mutable state, so this
// is safe for concurrent callers.
func (m *Model) DistributionInto(x []float64, out []float64) {
	k := len(m.Prior)
	post := out[:k]
	copy(post, m.Prior)
	for j := range m.CPT {
		b := m.Disc.Bin(j, x[j])
		for c := 0; c < k; c++ {
			post[c] *= m.CPT[j][c][b]
		}
		// Rescale to dodge underflow on wide attribute sets.
		sum := 0.0
		for _, p := range post {
			sum += p
		}
		if sum > 0 {
			for c := range post {
				post[c] /= sum
			}
		}
	}
	sum := 0.0
	for _, p := range post {
		sum += p
	}
	if sum == 0 {
		copy(post, m.Prior)
		return
	}
	for c := range post {
		post[c] /= sum
	}
}
