package persist

// Crash-safe checkpoint files. A checkpoint is a single self-validating
// file: a fixed magic, a format version, the payload length and a CRC
// over the payload, then the payload itself. Writes go through a temp
// file in the target directory that is fsync'd and atomically renamed
// into place (then the directory is fsync'd), so a crash — including
// kill -9 mid-write — can never leave a half-written file under the
// checkpoint's name: either the old generation survives intact or the
// new one is complete. Torn or tampered files (truncated payload, bad
// magic, CRC mismatch) are detected at read time and reported as
// ErrCorrupt so callers can quarantine them instead of loading garbage.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// checkpointMagic identifies an HMD checkpoint file. The trailing byte
// versions the *container* format; payload formats are versioned by the
// header's Version field.
var checkpointMagic = [8]byte{'H', 'M', 'D', 'C', 'K', 'P', 'T', '1'}

// ErrCorrupt marks a checkpoint file that failed validation: truncated,
// torn by a crashed writer, or bit-rotted. Callers must treat the file
// as unusable (quarantine it) and fall back to an older generation.
var ErrCorrupt = errors.New("persist: corrupt checkpoint")

// checkpointHeader is the fixed-size binary header preceding the
// payload.
type checkpointHeader struct {
	Magic   [8]byte
	Version uint32
	Length  uint64
	CRC     uint32
}

// WriteCheckpoint atomically writes the payload produced by fn to path.
// The payload is first staged in memory so its length and CRC land in
// the header; the file is then written to a temp name in path's
// directory, fsync'd, renamed over path, and the directory fsync'd.
func WriteCheckpoint(path string, version uint32, fn func(io.Writer) error) error {
	var payload bytes.Buffer
	if err := fn(&payload); err != nil {
		return fmt.Errorf("persist: building checkpoint payload: %w", err)
	}
	hdr := checkpointHeader{
		Magic:   checkpointMagic,
		Version: version,
		Length:  uint64(payload.Len()),
		CRC:     crc32.ChecksumIEEE(payload.Bytes()),
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: staging checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure past this point must not leave the temp file behind.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := binary.Write(tmp, binary.LittleEndian, hdr); err != nil {
		return fail(fmt.Errorf("persist: writing checkpoint header: %w", err))
	}
	if _, err := tmp.Write(payload.Bytes()); err != nil {
		return fail(fmt.Errorf("persist: writing checkpoint payload: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("persist: fsync checkpoint: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("persist: closing checkpoint: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: publishing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some CI overlays) are not an
// error: rename durability is then best-effort, exactly as for any
// other tool on that filesystem.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// ReadCheckpoint validates and returns the payload of the checkpoint at
// path. Validation failures (short file, wrong magic, length or CRC
// mismatch) return an error wrapping ErrCorrupt; a version other than
// wantVersion is also reported as corruption, since the payload decoder
// that follows cannot interpret it.
func ReadCheckpoint(path string, wantVersion uint32) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: reading checkpoint: %w", err)
	}
	var hdr checkpointHeader
	hdrSize := binary.Size(hdr)
	if len(raw) < hdrSize {
		return nil, fmt.Errorf("%w: %s: %d bytes is shorter than the %d-byte header",
			ErrCorrupt, path, len(raw), hdrSize)
	}
	if err := binary.Read(bytes.NewReader(raw[:hdrSize]), binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: unreadable header", ErrCorrupt, path)
	}
	if hdr.Magic != checkpointMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	if hdr.Version != wantVersion {
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrCorrupt, path, hdr.Version, wantVersion)
	}
	payload := raw[hdrSize:]
	if uint64(len(payload)) != hdr.Length {
		return nil, fmt.Errorf("%w: %s: torn payload (%d bytes, header says %d)",
			ErrCorrupt, path, len(payload), hdr.Length)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != hdr.CRC {
		return nil, fmt.Errorf("%w: %s: CRC mismatch (%08x, header says %08x)",
			ErrCorrupt, path, crc, hdr.CRC)
	}
	return payload, nil
}
