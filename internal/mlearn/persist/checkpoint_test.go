package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestCheckpoint(t *testing.T, path string, version uint32, payload []byte) {
	t.Helper()
	err := WriteCheckpoint(path, version, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	payload := []byte("the trained model bytes")
	writeTestCheckpoint(t, path, 3, payload)

	got, err := ReadCheckpoint(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
}

func TestCheckpointOverwriteIsAtomicReplacement(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	writeTestCheckpoint(t, path, 1, []byte("generation one"))
	writeTestCheckpoint(t, path, 1, []byte("generation two"))

	got, err := ReadCheckpoint(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation two" {
		t.Fatalf("got %q after overwrite", got)
	}
	// No stray temp files may survive a successful write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file left behind: %s", e.Name())
		}
	}
}

// TestCheckpointTornWriteDetected is the crash-safety contract: every
// truncation point of a valid checkpoint file must be detected as
// corruption, never returned as a payload.
func TestCheckpointTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "model.ckpt")
	payload := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	writeTestCheckpoint(t, good, 7, payload)
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(raw); cut++ {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(torn, 7); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d bytes not detected: err=%v", cut, len(raw), err)
		}
	}
}

func TestCheckpointBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	writeTestCheckpoint(t, path, 7, []byte("sensitive model state"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not detected: err=%v", err)
	}
}

func TestCheckpointVersionMismatchIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	writeTestCheckpoint(t, path, 1, []byte("v1 payload"))
	if _, err := ReadCheckpoint(path, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version mismatch not reported as corruption: err=%v", err)
	}
}

func TestCheckpointMissingFileIsNotExist(t *testing.T) {
	_, err := ReadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"), 1)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file should surface os.ErrNotExist, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("missing file must not be classified as corrupt")
	}
}

func TestCheckpointFailedPayloadLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	err := WriteCheckpoint(path, 1, func(io.Writer) error {
		return errors.New("payload build failed")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("failed write left files behind: %v", entries)
	}
}
