// Package persist serialises trained classifiers (and core detectors)
// with encoding/gob so a detector trained offline can be deployed by a
// separate monitoring process — the paper's workflow, where training
// happens in WEKA and the trained model is implemented in hardware or
// shipped to the monitor.
//
// All model types from internal/mlearn/... are registered; ensemble
// models serialise their member models through the Classifier
// interface.
package persist

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/knn"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

func init() {
	gob.Register(&oner.Model{})
	gob.Register(&bayesnet.Model{})
	gob.Register(&j48.Model{})
	gob.Register(&reptree.Model{})
	gob.Register(&jrip.Model{})
	gob.Register(&knn.Model{})
	gob.Register(&logistic.Model{})
	gob.Register(&sgd.Model{})
	gob.Register(&smo.Model{})
	gob.Register(&mlp.Model{})
	gob.Register(&ensemble.BoostedModel{})
	gob.Register(&ensemble.BaggedModel{})
}

// envelope wraps the interface value so gob records the concrete type.
type envelope struct {
	Model mlearn.Classifier
}

// Save writes a trained classifier to w.
func Save(w io.Writer, c mlearn.Classifier) error {
	return SaveInto(gob.NewEncoder(w), c)
}

// SaveInto encodes a classifier onto an existing gob stream, letting
// callers prepend their own metadata with the same encoder.
func SaveInto(enc *gob.Encoder, c mlearn.Classifier) error {
	if c == nil {
		return fmt.Errorf("persist: nil classifier")
	}
	return enc.Encode(envelope{Model: c})
}

// Load reads a classifier previously written by Save.
func Load(r io.Reader) (mlearn.Classifier, error) {
	return LoadFrom(gob.NewDecoder(r))
}

// LoadFrom decodes a classifier from an existing gob stream.
func LoadFrom(dec *gob.Decoder) (mlearn.Classifier, error) {
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if env.Model == nil {
		return nil, fmt.Errorf("persist: decoded envelope holds no model")
	}
	return env.Model, nil
}
