package persist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/zoo"
)

// TestRoundTripAllModels trains every classifier and every ensemble
// variant, saves it, loads it back and verifies predictions are
// identical on a probe set.
func TestRoundTripAllModels(t *testing.T) {
	train := mltest.Blobs(200, 4, 1)
	probe := mltest.Blobs(100, 4, 2)

	var trainers []mlearn.Trainer
	for _, name := range zoo.Names() {
		trainers = append(trainers, zoo.MustNew(name, 7))
		for _, v := range []zoo.Variant{zoo.Boosted, zoo.Bagged} {
			tr, err := zoo.NewVariant(name, v, 5, 7)
			if err != nil {
				t.Fatal(err)
			}
			trainers = append(trainers, tr)
		}
	}

	for _, tr := range trainers {
		tr := tr
		t.Run(tr.Name(), func(t *testing.T) {
			orig, err := tr.Train(train, nil)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(&buf, orig); err != nil {
				t.Fatalf("save: %v", err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			for i := range probe.X {
				a := orig.Distribution(probe.X[i])
				b := loaded.Distribution(probe.X[i])
				if len(a) != len(b) {
					t.Fatal("distribution width changed")
				}
				for c := range a {
					if a[c] != b[c] {
						t.Fatalf("row %d class %d: %v != %v after round-trip", i, c, a[c], b[c])
					}
				}
			}
		})
	}
}

func TestSaveNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("nil classifier should fail")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input should fail")
	}
}
