package describe

import (
	"strings"
	"testing"

	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/zoo"
)

func TestDescribeAllModels(t *testing.T) {
	train := mltest.Blobs(200, 4, 1)
	attrs := []string{"branch_misses", "prefetches"}
	classes := []string{"benign", "malware"}

	names := append(zoo.Names(), zoo.BaselineNames()...)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := zoo.MustNew(name, 3).Train(train, nil)
			if err != nil {
				t.Fatal(err)
			}
			out := Model(c, attrs, classes)
			if out == "" {
				t.Fatal("empty description")
			}
			if strings.Contains(out, "unrenderable") {
				t.Fatalf("model not rendered:\n%s", out)
			}
		})
	}
}

func TestDescribeTreeContent(t *testing.T) {
	train := mltest.Blobs(300, 6, 5)
	c, err := zoo.MustNew("J48", 1).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Model(c, []string{"f0", "f1"}, []string{"benign", "malware"})
	for _, want := range []string{"J48 tree", "f0", "<", ">=", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree description missing %q:\n%s", want, out)
		}
	}
	// Both class names should appear in leaf annotations.
	if !strings.Contains(out, "benign") || !strings.Contains(out, "malware") {
		t.Error("class names missing from leaves")
	}
}

func TestDescribeRuleContent(t *testing.T) {
	train := mltest.Bands(400, 3)
	c, err := zoo.MustNew("JRip", 1).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Model(c, []string{"v"}, []string{"benign", "malware"})
	for _, want := range []string{"JRip rule list", "IF", "THEN", "ELSE", "conf"} {
		if !strings.Contains(out, want) {
			t.Errorf("rule description missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeEnsembleNesting(t *testing.T) {
	train := mltest.Blobs(200, 4, 7)
	tr, err := zoo.NewVariant("OneR", zoo.Boosted, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tr.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Model(c, []string{"a", "b"}, []string{"benign", "malware"})
	if !strings.Contains(out, "AdaBoost.M1 committee") {
		t.Errorf("missing committee header:\n%s", out)
	}
	if !strings.Contains(out, "alpha=") {
		t.Error("missing member vote weights")
	}
	if !strings.Contains(out, "OneR on") {
		t.Error("missing nested base description")
	}
}

func TestDescribeFallbacks(t *testing.T) {
	train := mltest.Blobs(100, 4, 9)
	c, err := zoo.MustNew("OneR", 1).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No names supplied: generic placeholders appear.
	out := Model(c, nil, nil)
	if !strings.Contains(out, "attr") || !strings.Contains(out, "class") {
		t.Errorf("fallback names missing:\n%s", out)
	}
	// Unknown model type renders a marker instead of panicking.
	if out := Model(fake{}, nil, nil); !strings.Contains(out, "unrenderable") {
		t.Error("unknown type should be marked unrenderable")
	}
}

type fake struct{}

func (fake) Distribution([]float64) []float64 { return []float64{1, 0} }
