// Package describe renders trained models as human-readable text — the
// view WEKA prints after training, which analysts use to understand
// *why* a detector flags a program (which counters, which thresholds).
package describe

import (
	"fmt"
	"strings"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/knn"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// Model renders a trained classifier. attrNames supplies display names
// per feature column (nil falls back to attr<N>); classNames likewise
// (nil falls back to class<N>).
func Model(c mlearn.Classifier, attrNames, classNames []string) string {
	d := &describer{attrs: attrNames, classes: classNames}
	var sb strings.Builder
	d.model(&sb, c, "")
	return sb.String()
}

type describer struct {
	attrs   []string
	classes []string
}

func (d *describer) attr(i int) string {
	if i >= 0 && i < len(d.attrs) {
		return d.attrs[i]
	}
	return fmt.Sprintf("attr%d", i)
}

func (d *describer) class(i int) string {
	if i >= 0 && i < len(d.classes) {
		return d.classes[i]
	}
	return fmt.Sprintf("class%d", i)
}

func (d *describer) classOfDist(dist []float64) string {
	best, bestP := 0, -1.0
	for c, p := range dist {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return fmt.Sprintf("%s (%.2f)", d.class(best), bestP)
}

func (d *describer) model(sb *strings.Builder, c mlearn.Classifier, indent string) {
	switch m := c.(type) {
	case *oner.Model:
		fmt.Fprintf(sb, "%sOneR on %s (train error %.3f):\n", indent, d.attr(m.Attr), m.TrainError)
		for i, cls := range m.Classes {
			var cond string
			switch {
			case len(m.Thresholds) == 0:
				cond = "always"
			case i == 0:
				cond = fmt.Sprintf("< %.6g", m.Thresholds[0])
			case i == len(m.Classes)-1:
				cond = fmt.Sprintf(">= %.6g", m.Thresholds[i-1])
			default:
				cond = fmt.Sprintf("in [%.6g, %.6g)", m.Thresholds[i-1], m.Thresholds[i])
			}
			fmt.Fprintf(sb, "%s  %s -> %s\n", indent, cond, d.class(cls))
		}
	case *j48.Model:
		fmt.Fprintf(sb, "%sJ48 tree:\n", indent)
		d.tree(sb, m.Root, indent+"  ")
	case *reptree.Model:
		fmt.Fprintf(sb, "%sREPTree:\n", indent)
		d.tree(sb, m.Root, indent+"  ")
	case *jrip.Model:
		fmt.Fprintf(sb, "%sJRip rule list (target %s):\n", indent, d.class(m.TargetClass))
		for i := range m.Rules {
			r := &m.Rules[i]
			var conds []string
			for _, cond := range r.Conds {
				op := "<="
				if cond.Ge {
					op = ">="
				}
				conds = append(conds, fmt.Sprintf("%s %s %.6g", d.attr(cond.Attr), op, cond.Threshold))
			}
			fmt.Fprintf(sb, "%s  IF %s THEN %s (conf %.2f)\n",
				indent, strings.Join(conds, " AND "), d.class(r.Class), r.Confidence)
		}
		fmt.Fprintf(sb, "%s  ELSE %s\n", indent, d.classOfDist(m.Default))
	case *sgd.Model:
		d.linear(sb, "SGD (hinge)", m.Weights, m.Bias, indent)
	case *smo.Model:
		d.linear(sb, fmt.Sprintf("SMO (%d support vectors)", m.SupportVectors), m.Weights, m.Bias, indent)
	case *logistic.Model:
		d.linear(sb, "Logistic regression", m.Weights, m.Bias, indent)
	case *knn.Model:
		fmt.Fprintf(sb, "%sKNN: k=%d over %d stored instances\n", indent, m.K, len(m.X))
	case *mlp.Model:
		fmt.Fprintf(sb, "%sMLP: %d inputs -> %d sigmoid hidden -> %d outputs\n",
			indent, m.Inputs(), m.Hidden(), m.Outputs())
	case *bayesnet.Model:
		fmt.Fprintf(sb, "%sBayesNet (naive structure): priors", indent)
		for c, p := range m.Prior {
			fmt.Fprintf(sb, " %s=%.2f", d.class(c), p)
		}
		fmt.Fprintf(sb, "\n")
		for j := range m.CPT {
			fmt.Fprintf(sb, "%s  %s: %d bins (cuts:", indent, d.attr(j), m.Disc.Bins(j))
			for _, cut := range m.Disc.Cuts[j] {
				fmt.Fprintf(sb, " %.6g", cut)
			}
			fmt.Fprintf(sb, ")\n")
		}
	case *ensemble.BoostedModel:
		fmt.Fprintf(sb, "%sAdaBoost.M1 committee of %d:\n", indent, len(m.Models))
		for i, base := range m.Models {
			fmt.Fprintf(sb, "%s  [%d] alpha=%.3f\n", indent, i, m.Alphas[i])
			d.model(sb, base, indent+"    ")
		}
	case *ensemble.BaggedModel:
		fmt.Fprintf(sb, "%sBagging committee of %d:\n", indent, len(m.Models))
		for i, base := range m.Models {
			fmt.Fprintf(sb, "%s  [%d]\n", indent, i)
			d.model(sb, base, indent+"    ")
		}
	default:
		fmt.Fprintf(sb, "%s(unrenderable model %T)\n", indent, c)
	}
}

func (d *describer) tree(sb *strings.Builder, n *mlearn.TreeNode, indent string) {
	if n.Leaf {
		fmt.Fprintf(sb, "%s-> %s\n", indent, d.classOfDist(n.Dist))
		return
	}
	fmt.Fprintf(sb, "%s%s < %.6g:\n", indent, d.attr(n.Attr), n.Threshold)
	d.tree(sb, n.Left, indent+"|  ")
	fmt.Fprintf(sb, "%s%s >= %.6g:\n", indent, d.attr(n.Attr), n.Threshold)
	d.tree(sb, n.Right, indent+"|  ")
}

func (d *describer) linear(sb *strings.Builder, kind string, weights []float64, bias float64, indent string) {
	fmt.Fprintf(sb, "%s%s: margin = %.4g", indent, kind, bias)
	for j, w := range weights {
		if w >= 0 {
			fmt.Fprintf(sb, " + %.4g*%s", w, d.attr(j))
		} else {
			fmt.Fprintf(sb, " - %.4g*%s", -w, d.attr(j))
		}
	}
	fmt.Fprintf(sb, "  (inputs min-max normalised)\n")
}
